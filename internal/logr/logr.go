// Package logr emulates the MVS System Logger (IXGLOGR), the canonical
// exploiter of the CF list structure model (§3.3.3, §5.1): named log
// streams whose entries, written by any system in the sysplex, merge
// into one totally ordered log.
//
// The reproduction keeps the real subsystem's shape:
//
//   - Interim storage is a CF list structure (allocated through
//     whatever cf.Front the sysplex runs — under CFRM duplexing, log
//     writes survive a CF failure like every other structure).
//   - Every entry is stamped by the sysplex timer, so the merged
//     stream has one consistent total order no matter which system
//     wrote which record (§3.1: "timestamps obtained on different
//     systems are mutually consistent").
//   - When interim occupancy crosses the high-offload threshold, the
//     writer drains the oldest entries to DASD offload datasets and
//     trims interim storage down to the low mark. Offload is
//     serialized by a structure lock entry, and log writes execute
//     conditionally on that lock — the serialized-list conditional
//     execution protocol of §3.3.3.
//   - Browse cursors read seamlessly across offloaded and interim
//     data: first the DASD datasets, then the residual CF entries.
//   - If a system dies mid-offload, any peer completes the offload
//     (peer takeover). The offload protocol is idempotent: DASD blocks
//     are written first, the control entry update is the commit point,
//     and interim deletion is a recoverable cleanup.
package logr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/dasd"
	"sysplex/internal/metrics"
	"sysplex/internal/timer"
	"sysplex/internal/vclock"
)

// Errors returned by the logger.
var (
	ErrNoStream     = errors.New("logr: stream not connected")
	ErrRecordTooBig = errors.New("logr: record exceeds maximum block size")
	ErrBadSpec      = errors.New("logr: bad stream spec")
)

// MaxRecord bounds one log record's payload so the JSON envelope
// always fits a DASD block during offload.
const MaxRecord = 3 * 1024

// list/lock layout inside the stream's CF structure.
const (
	listInterim = 0 // interim storage, keyed by sysplex timestamp
	listControl = 1 // SPEC + CTL control entries
	lockOffload = 0 // offload / browse serialization lock entry
)

// StreamSpec defines a log stream. The first connector in the sysplex
// allocates the backing structure and records the spec in it; later
// connectors adopt the recorded spec, so every system agrees on the
// thresholds regardless of local defaults.
type StreamSpec struct {
	// Name is the sysplex-wide stream name (e.g. "SYSPLEX.RACF.AUDIT").
	Name string
	// InterimEntries is the CF interim-storage capacity (default 512).
	InterimEntries int
	// HighOffloadPct is the occupancy percentage that triggers an
	// offload (default 70).
	HighOffloadPct int
	// LowOffloadPct is the occupancy percentage an offload drains down
	// to (default 30).
	LowOffloadPct int
	// OffloadBlocks sizes each DASD offload dataset in blocks
	// (default 512). When one fills, the next in the chain is
	// allocated.
	OffloadBlocks int
}

func (s StreamSpec) withDefaults() (StreamSpec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("%w: empty name", ErrBadSpec)
	}
	if s.InterimEntries == 0 {
		s.InterimEntries = 512
	}
	if s.HighOffloadPct == 0 {
		s.HighOffloadPct = 70
	}
	if s.LowOffloadPct == 0 {
		s.LowOffloadPct = 30
	}
	if s.OffloadBlocks == 0 {
		s.OffloadBlocks = 512
	}
	if s.InterimEntries < 8 || s.HighOffloadPct <= s.LowOffloadPct ||
		s.HighOffloadPct > 100 || s.LowOffloadPct < 0 || s.OffloadBlocks < 8 {
		return s, fmt.Errorf("%w: %+v", ErrBadSpec, s)
	}
	return s, nil
}

// Record is one merged-stream log entry as seen by a browse cursor.
type Record struct {
	// Key is the stream-unique, totally ordered position (derived from
	// the sysplex timestamp, so lexical order == time order).
	Key string
	// Sys is the system that wrote the record.
	Sys string
	// Time is the sysplex timestamp assigned at write.
	Time time.Time
	// Data is the payload.
	Data []byte
}

// envelope is the stored form of a record, identical in interim
// storage and in offload dataset blocks.
type envelope struct {
	K string `json:"k"`
	S string `json:"s"`
	T int64  `json:"t"`
	D []byte `json:"d,omitempty"`
}

func (e envelope) record() Record {
	return Record{Key: e.K, Sys: e.S, Time: time.Unix(0, e.T), Data: e.D}
}

// ctl is the stream control entry: the offload frontier and the DASD
// cursor. Updating it is the commit point of an offload.
type ctl struct {
	// HighKey is the highest offloaded key; interim entries at or below
	// it are never browsed from interim (they are either offload
	// leftovers already on DASD, or stranded writes their writer is
	// about to retract).
	HighKey string `json:"high,omitempty"`
	// NextDataset / NextBlock locate the next free offload block.
	NextDataset int `json:"ds"`
	NextBlock   int `json:"blk"`
	// Offloaded counts records moved to DASD over the stream's life.
	Offloaded int64 `json:"n"`
	// Pending lists the interim entry IDs the committing offload moved
	// to DASD but may not have deleted yet. The next pass (or a peer
	// takeover) reaps exactly these — never any other sub-frontier
	// entry, which could be a stranded fresh write that was never
	// offloaded and must survive until its writer retracts it.
	Pending []string `json:"pend,omitempty"`
}

// Config wires a per-system log manager to its substrates.
type Config struct {
	// System is this instance's system name (the CF connector name).
	System string
	// Front is the CF command surface (duplexed under CFRM).
	Front cf.Front
	// Farm and Volume locate DASD offload datasets.
	Farm   *dasd.Farm
	Volume string
	// Timer is the shared sysplex timer stamping every record.
	Timer *timer.Timer
	// Clock defaults to the real clock.
	Clock vclock.Clock
	// Metrics optionally shares a registry across systems (the sysplex
	// façade passes one registry to every member's manager so logr.*
	// metrics aggregate sysplex-wide). Nil allocates a private one.
	Metrics *metrics.Registry
}

// Manager is one system's System Logger instance. All managers in the
// sysplex share stream state through the CF; the manager itself only
// holds connections.
type Manager struct {
	sys    string
	front  cf.Front
	farm   *dasd.Farm
	volume string
	timer  *timer.Timer
	clock  vclock.Clock
	reg    *metrics.Registry

	mu      sync.Mutex
	streams map[string]*Stream
}

// New builds a manager for one system.
func New(cfg Config) (*Manager, error) {
	if cfg.System == "" || cfg.Front == nil || cfg.Farm == nil || cfg.Timer == nil {
		return nil, errors.New("logr: incomplete config")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Manager{
		sys:     cfg.System,
		front:   cfg.Front,
		farm:    cfg.Farm,
		volume:  cfg.Volume,
		timer:   cfg.Timer,
		clock:   cfg.Clock,
		reg:     cfg.Metrics,
		streams: make(map[string]*Stream),
	}, nil
}

// System returns the owning system name.
func (m *Manager) System() string { return m.sys }

// Metrics exposes the logr.* instrumentation: write latency histogram,
// interim occupancy gauge, offload bytes/duration, takeover count.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

func structureName(stream string) string { return "LOGR." + stream }

// Connect attaches this system to a log stream, allocating the backing
// CF structure on first use anywhere in the sysplex. The spec recorded
// by the allocator wins; later connectors adopt it.
func (m *Manager) Connect(ctx context.Context, spec StreamSpec) (*Stream, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if s, ok := m.streams[spec.Name]; ok {
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()

	sn := structureName(spec.Name)
	ls, err := m.front.ListStructure(sn)
	if err != nil {
		ls, err = m.front.AllocateListStructure(sn, 2, 1, spec.InterimEntries+8)
		if err != nil {
			// Lost an allocation race: attach.
			ls, err = m.front.ListStructure(sn)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ls.Connect(ctx, m.sys, nil); err != nil {
		return nil, err
	}
	// Record or adopt the stream spec. Write-if-absent then re-read:
	// racing connectors converge on whichever spec landed first.
	if _, err := ls.Read(ctx, m.sys, "SPEC", cf.Cond{}); errors.Is(err, cf.ErrEntryNotFound) {
		raw, _ := json.Marshal(spec)
		if err := ls.Write(ctx, m.sys, listControl, "SPEC", "SPEC", raw, cf.FIFO, cf.Cond{}); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	e, err := ls.Read(ctx, m.sys, "SPEC", cf.Cond{})
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(e.Data, &spec); err != nil {
		return nil, fmt.Errorf("logr: corrupt SPEC for %s: %v", spec.Name, err)
	}
	s := &Stream{mgr: m, spec: spec, list: ls}
	if m.farm.Durable() {
		if err := s.setupDurable(ctx); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	m.streams[spec.Name] = s
	m.mu.Unlock()
	return s, nil
}

// allocOrAttach resolves a dataset by name, allocating it on the
// manager's volume on first use; lost allocation races fall back to
// the catalog. On a reopened durable farm the catalog already has it.
func (m *Manager) allocOrAttach(name string, blocks int) (*dasd.Dataset, error) {
	if ds, err := m.farm.Dataset(name); err == nil {
		return ds, nil
	}
	ds, err := m.farm.Allocate(m.volume, name, blocks)
	if err != nil {
		if ds2, err2 := m.farm.Dataset(name); err2 == nil {
			return ds2, nil
		}
		return nil, err
	}
	return ds, nil
}

// Stream returns a connected stream by name.
func (m *Manager) Stream(name string) (*Stream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.streams[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoStream, name)
	}
	return s, nil
}

// StreamNames lists this manager's connected streams, sorted.
func (m *Manager) StreamNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.streams))
	for n := range m.streams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TakeoverFailed completes any offload a failed system left behind, on
// every stream this manager is connected to. The failed system's
// offload lock must already have been cleared (the CF purges a failed
// connector's lock entries; the sysplex calls FailConnector before
// routing the failure here). Returns the number of streams on which
// leftover offload work was completed.
func (m *Manager) TakeoverFailed(ctx context.Context, failedSys string) int {
	m.mu.Lock()
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range streams {
		did, err := s.recoverOffload(ctx, failedSys)
		if err != nil {
			continue
		}
		// Also finish the drain the dead writer may have been partway
		// through: if occupancy is still above the high mark, run a
		// normal threshold pass on its behalf.
		if s.list.Len(listInterim) >= s.highMark() {
			if moved, err := s.offloadOnce(ctx, false); err == nil && moved > 0 {
				did = true
			}
		}
		if did {
			n++
			m.reg.Counter("logr.takeover.count").Inc()
		}
	}
	return n
}

// Stream is one system's connection to a sysplex-merged log stream.
type Stream struct {
	mgr  *Manager
	spec StreamSpec
	list cf.List

	// Durable-farm artifacts (nil on an in-memory farm). CF interim
	// storage is volatile across a whole-sysplex crash, so on durable
	// farms every acknowledged write is also appended to one of this
	// system's two staging datasets (LOGR.<stream>.STG.<sys>.{0,1}) and
	// group-commit synced before Write returns — the ack then really
	// means durable. Compaction flips between the pair so a live record
	// always has a synced copy in at least one of them. The offload
	// frontier gets a durable shadow too (LOGR.<stream>.CTL, two
	// ping-pong slots versioned by the Offloaded count), written between
	// the DASD data sync and the CF commit point, so cold recovery knows
	// exactly which records live on the offload chain versus in staging.
	stg     [2]*dasd.Dataset
	ctlDS   *dasd.Dataset
	stgMu   sync.Mutex // staging cursor, active index, compaction
	stgAct  int
	stgNext int

	dsMu sync.Mutex // serializes local offload-dataset handle lookups

	// passMu serializes this system's use of the stream's offload lock
	// entry. The CF serializes per connector, not per request: a second
	// SetLock by the same connector succeeds, and conditional commands
	// pass when the holder is the requester itself — real XES semantics,
	// under which the exploiter address space must serialize its own
	// requests (as IXGLOGR does). Passes that hold the lock (offload,
	// browse snapshot, takeover) take it exclusively; per-entry
	// conditional commands (a write attempt, a retract) take it shared,
	// so concurrent writers still interleave freely with each other.
	passMu sync.RWMutex

	// testCrash, when set by tests, simulates the writer dying inside
	// offload at the named stage ("dasd-written" = blocks on DASD, CTL
	// not yet updated; "ctl-updated" = CTL updated, interim not yet
	// cleaned). Returning true abandons the offload with the lock held,
	// exactly as a crashed system would.
	testCrash func(stage string) bool
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.spec.Name }

// Spec returns the sysplex-agreed stream definition.
func (s *Stream) Spec() StreamSpec { return s.spec }

// InterimLen returns current interim-storage occupancy.
func (s *Stream) InterimLen() int { return s.list.Len(listInterim) }

func (s *Stream) highMark() int { return s.spec.InterimEntries * s.spec.HighOffloadPct / 100 }
func (s *Stream) lowMark() int  { return s.spec.InterimEntries * s.spec.LowOffloadPct / 100 }

// keyFor renders a sysplex timestamp as a fixed-width, lexically
// ordered stream key. Timer stamps are strictly increasing across
// systems, so keys are unique and lexical order is time order.
func keyFor(t time.Time) string { return fmt.Sprintf("%020d", t.UnixNano()) }

// Write appends one record to the merged stream and returns its
// position. The entry lands in CF interim storage conditionally on the
// offload lock; if the write races with an offload that already moved
// the frontier past the new key, the writer re-stamps and retries, so
// a record is never stranded below the offload frontier.
func (s *Stream) Write(ctx context.Context, data []byte) (Record, error) {
	if len(data) > MaxRecord {
		return Record{}, fmt.Errorf("%w (%d > %d)", ErrRecordTooBig, len(data), MaxRecord)
	}
	m := s.mgr
	start := m.clock.Now()
	cond := cf.Cond{Use: true, LockIndex: lockOffload}
	for attempt := 0; ; attempt++ {
		if err := vclock.Check(ctx, m.clock); err != nil {
			return Record{}, err
		}
		s.passMu.RLock()
		stamp := m.timer.Stamp()
		key := keyFor(stamp)
		env, err := json.Marshal(envelope{K: key, S: m.sys, T: stamp.UnixNano(), D: data})
		if err != nil {
			s.passMu.RUnlock()
			return Record{}, err
		}
		err = s.list.Write(ctx, m.sys, listInterim, key, key, env, cf.Keyed, cond)
		s.passMu.RUnlock()
		switch {
		case err == nil:
			// Committed to interim — unless an offload slid the frontier
			// past this key between stamping and writing. Detect and
			// re-drive: if the entry is still present we remove it before
			// anyone can browse-skip it; if it is gone, an offload took
			// it to DASD, which is just as durable. The record is durable
			// from here on, so the remaining bookkeeping runs under a
			// detached context: a caller cancellation must not strand the
			// committed entry half-acknowledged.
			dctx := vclock.Detach(ctx)
			c, cerr := s.readCTL(dctx)
			if cerr != nil {
				return Record{}, cerr
			}
			if c.HighKey < key {
				return s.finishWrite(dctx, start, key, stamp, data, env)
			}
			if gone := s.retractEntry(dctx, key); gone {
				return s.finishWrite(dctx, start, key, stamp, data, env)
			}
			continue // retracted our own stranded entry: retry with a fresh stamp
		case errors.Is(err, cf.ErrLockHeld):
			// An offload (or a browse snapshot) is in progress; the
			// conditional protocol quiesces mainline writes.
			m.clock.Sleep(50 * time.Microsecond)
		case errors.Is(err, cf.ErrListFull):
			if _, oerr := s.offloadOnce(ctx, true); oerr != nil && !errors.Is(oerr, cf.ErrLockHeld) {
				return Record{}, oerr
			}
			m.clock.Sleep(50 * time.Microsecond)
		default:
			return Record{}, err
		}
	}
}

// finishWrite completes the record's durability (on a durable farm the
// envelope is staged to DASD before the ack), charges metrics, and runs
// the threshold check.
func (s *Stream) finishWrite(ctx context.Context, start time.Time, key string, stamp time.Time, data, env []byte) (Record, error) {
	m := s.mgr
	if s.stg[0] != nil {
		if err := s.appendStaging(env); err != nil {
			return Record{}, err
		}
	}
	m.reg.Counter("logr.write.count").Inc()
	m.reg.Histogram("logr.write.latency").Observe(m.clock.Since(start))
	occ := s.list.Len(listInterim)
	m.reg.Gauge("logr.interim.entries").Set(int64(occ))
	if occ >= s.highMark() {
		// Threshold-driven offload; ErrLockHeld means a peer is already
		// draining, which serves this writer equally well.
		if _, err := s.offloadOnce(ctx, false); err != nil && !errors.Is(err, cf.ErrLockHeld) {
			return Record{}, err
		}
	}
	return Record{Key: key, Sys: m.sys, Time: stamp, Data: data}, nil
}

// retractEntry removes the caller's just-written entry if it is still
// in interim storage. Returns true if the entry is gone because an
// offload already moved it to DASD (i.e. it is durable and ordered).
// Each attempt runs under the shared pass lock, so a local offload
// pass completes its cleanup before the retract can observe the entry
// — ErrEntryNotFound then reliably means "on DASD", never "mid-pass".
func (s *Stream) retractEntry(ctx context.Context, key string) bool {
	cond := cf.Cond{Use: true, LockIndex: lockOffload}
	for {
		s.passMu.RLock()
		err := s.list.Delete(ctx, s.mgr.sys, key, cond)
		s.passMu.RUnlock()
		switch {
		case err == nil:
			return false // we took it back before any browse could miss it
		case errors.Is(err, cf.ErrEntryNotFound):
			return true // offloaded to DASD
		case errors.Is(err, cf.ErrLockHeld):
			s.mgr.clock.Sleep(50 * time.Microsecond)
		default:
			// Treat any other failure conservatively as "still present":
			// the retry loop re-stamps and the stale entry, being below
			// the frontier, is cleaned by the next offload pass.
			return false
		}
	}
}

func (s *Stream) readCTL(ctx context.Context) (ctl, error) {
	e, err := s.list.Read(ctx, s.mgr.sys, "CTL", cf.Cond{})
	if errors.Is(err, cf.ErrEntryNotFound) {
		return ctl{}, nil
	}
	if err != nil {
		return ctl{}, err
	}
	var c ctl
	if err := json.Unmarshal(e.Data, &c); err != nil {
		return ctl{}, fmt.Errorf("logr: corrupt CTL for %s: %v", s.spec.Name, err)
	}
	return c, nil
}

func (s *Stream) writeCTL(ctx context.Context, c ctl) error {
	raw, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return s.list.Write(ctx, s.mgr.sys, listControl, "CTL", "CTL", raw, cf.FIFO, cf.Cond{})
}

// setupDurable attaches the stream's durable artifacts on a file-backed
// farm — this system's staging pair and the shared durable CTL shadow —
// then runs cold recovery in case the CF came up empty.
func (s *Stream) setupDurable(ctx context.Context) error {
	m := s.mgr
	for i := 0; i < 2; i++ {
		ds, err := m.allocOrAttach(fmt.Sprintf("LOGR.%s.STG.%s.%d", s.spec.Name, m.sys, i), s.spec.InterimEntries+16)
		if err != nil {
			return err
		}
		s.stg[i] = ds
	}
	ctlDS, err := m.allocOrAttach(fmt.Sprintf("LOGR.%s.CTL", s.spec.Name), 2)
	if err != nil {
		return err
	}
	s.ctlDS = ctlDS
	s.scanStaging()
	return s.recoverCold(ctx)
}

// scanStaging picks the active staging dataset — the one holding the
// newest decodable record — and positions the append cursor past its
// last occupied block. Torn blocks count as occupied (a power cut hit
// them mid-flush) but contribute no key.
func (s *Stream) scanStaging() {
	m := s.mgr
	s.stgMu.Lock()
	defer s.stgMu.Unlock()
	var maxKey [2]string
	last := [2]int{-1, -1}
	for i, ds := range s.stg {
		for b := 0; b < ds.Blocks(); b++ {
			raw, err := ds.Read(m.sys, b)
			if err != nil {
				last[i] = b
				continue
			}
			if len(raw) == 0 || raw[0] == 0 {
				continue
			}
			last[i] = b
			if env, derr := decodeEnvelope(raw); derr == nil && env.K > maxKey[i] {
				maxKey[i] = env.K
			}
		}
	}
	s.stgAct = 0
	if maxKey[1] > maxKey[0] {
		s.stgAct = 1
	}
	s.stgNext = last[s.stgAct] + 1
}

// appendStaging makes one acknowledged record durable: append its
// envelope to the active staging dataset and group-commit. Runs after
// the CF interim write succeeds and before the ack returns to the
// caller.
func (s *Stream) appendStaging(env []byte) error {
	m := s.mgr
	s.stgMu.Lock()
	if s.stgNext >= s.stg[s.stgAct].Blocks() {
		if err := s.compactStagingLocked(); err != nil {
			s.stgMu.Unlock()
			return err
		}
	}
	ds, blk := s.stg[s.stgAct], s.stgNext
	s.stgNext++
	s.stgMu.Unlock()
	if err := ds.Write(m.sys, blk, env); err != nil {
		return err
	}
	m.reg.Counter("logr.staging.appends").Inc()
	// Concurrent appenders coalesce in the file backend's group commit:
	// one leader fsync covers the whole batch.
	return ds.Sync()
}

// compactStagingLocked (stgMu held) flips staging to the other dataset
// of the pair: survivors — records above the durable frontier, union of
// both datasets, deduped by key — are rewritten into the inactive
// dataset and synced BEFORE the old active is scrubbed, so at every
// instant every live record has at least one durable copy. A crash
// anywhere in between leaves extra stale copies, which recovery and the
// next compaction dedupe away.
func (s *Stream) compactStagingLocked() error {
	m := s.mgr
	c, err := s.readDurableCTL()
	if err != nil {
		return err
	}
	seen := make(map[string]bool)
	var keep []envelope
	for _, ds := range s.stg {
		for b := 0; b < ds.Blocks(); b++ {
			raw, rerr := ds.Read(m.sys, b)
			if rerr != nil {
				continue
			}
			env, derr := decodeEnvelope(raw)
			if derr != nil {
				continue
			}
			if c.HighKey != "" && env.K <= c.HighKey {
				continue // on the synced offload chain already
			}
			if seen[env.K] {
				continue
			}
			seen[env.K] = true
			keep = append(keep, env)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].K < keep[j].K })
	dst := s.stg[1-s.stgAct]
	if len(keep) >= dst.Blocks() {
		return fmt.Errorf("logr: %s staging overflow: %d live staged records", s.spec.Name, len(keep))
	}
	for b := 0; b < dst.Blocks(); b++ {
		var data []byte
		if b < len(keep) {
			if data, err = json.Marshal(keep[b]); err != nil {
				return err
			}
		}
		if err := dst.Write(m.sys, b, data); err != nil {
			return err
		}
	}
	if err := dst.Sync(); err != nil {
		return err
	}
	src := s.stg[s.stgAct]
	for b := 0; b < src.Blocks(); b++ {
		if err := src.Write(m.sys, b, nil); err != nil {
			return err
		}
	}
	if err := src.Sync(); err != nil {
		return err
	}
	s.stgAct = 1 - s.stgAct
	s.stgNext = len(keep)
	m.reg.Counter("logr.staging.compactions").Inc()
	return nil
}

// readDurableCTL returns the newest decodable durable CTL slot. A torn
// or empty slot is skipped — the other holds the last good frontier.
func (s *Stream) readDurableCTL() (ctl, error) {
	var best ctl
	found := false
	for b := 0; b < 2; b++ {
		raw, err := s.ctlDS.Read(s.mgr.sys, b)
		if err != nil {
			continue
		}
		end := len(raw)
		for end > 0 && raw[end-1] == 0 {
			end--
		}
		if end == 0 {
			continue
		}
		var c ctl
		if json.Unmarshal(raw[:end], &c) != nil {
			continue
		}
		if !found || c.Offloaded > best.Offloaded {
			best, found = c, true
		}
	}
	return best, nil
}

// writeDurableCTL persists the offload frontier before the CF commit
// point, alternating between two slots versioned by the monotonic
// Offloaded count, so a torn CTL write can never destroy the last good
// frontier. Pending is dropped: it only names interim entry IDs, which
// do not survive a cold start (interim is rebuilt from staging).
func (s *Stream) writeDurableCTL(c ctl) error {
	c.Pending = nil
	raw, err := json.Marshal(c)
	if err != nil {
		return err
	}
	if err := s.ctlDS.Write(s.mgr.sys, int(c.Offloaded%2), raw); err != nil {
		return err
	}
	return s.ctlDS.Sync()
}

// recoverCold rebuilds CF stream state after a whole-sysplex cold
// start: if the CF has no CTL for this stream but durable artifacts
// exist, seed the CF CTL from the durable shadow and re-insert every
// staged record above the frontier into interim storage — including
// records staged by peers that may never restart. Records at or below
// the frontier already live on the synced offload chain. Runs under
// the offload lock and is idempotent, so racing connectors converge.
func (s *Stream) recoverCold(ctx context.Context) error {
	m := s.mgr
	s.passMu.Lock()
	defer s.passMu.Unlock()
	if err := s.list.SetLock(ctx, lockOffload, m.sys); err != nil {
		return err
	}
	defer func() { _ = s.list.ReleaseLock(vclock.Detach(ctx), lockOffload, m.sys) }()
	if _, err := s.list.Read(ctx, m.sys, "CTL", cf.Cond{}); err == nil {
		return nil // CF state survived, or a peer already recovered
	} else if !errors.Is(err, cf.ErrEntryNotFound) {
		return err
	}
	c, err := s.readDurableCTL()
	if err != nil {
		return err
	}
	seeded := false
	if c.HighKey != "" || c.NextDataset > 0 || c.NextBlock > 0 || c.Offloaded > 0 {
		if err := s.writeCTL(ctx, c); err != nil {
			return err
		}
		seeded = true
	}
	seen := make(map[string]bool)
	for _, e := range s.list.Entries(listInterim) {
		seen[e.Key] = true
	}
	var envs []envelope
	for _, name := range m.farm.Datasets("LOGR." + s.spec.Name + ".STG.") {
		ds, derr := m.farm.Dataset(name)
		if derr != nil {
			continue
		}
		for b := 0; b < ds.Blocks(); b++ {
			raw, rerr := ds.Read(m.sys, b)
			if rerr != nil {
				continue // torn: mid-append at the power cut, never acknowledged
			}
			env, derr := decodeEnvelope(raw)
			if derr != nil {
				continue // empty block or partial flush
			}
			if c.HighKey != "" && env.K <= c.HighKey {
				continue
			}
			if seen[env.K] {
				continue
			}
			seen[env.K] = true
			envs = append(envs, env)
		}
	}
	sort.Slice(envs, func(i, j int) bool { return envs[i].K < envs[j].K })
	for _, env := range envs {
		raw, merr := json.Marshal(env)
		if merr != nil {
			return merr
		}
		if err := s.list.Write(ctx, m.sys, listInterim, env.K, env.K, raw, cf.Keyed, cf.Cond{}); err != nil {
			return err
		}
	}
	if seeded || len(envs) > 0 {
		m.reg.Counter("logr.recover.streams").Inc()
	}
	m.reg.Counter("logr.recover.records").Add(int64(len(envs)))
	return nil
}

// offloadDataset returns (allocating on first use) dataset n of the
// stream's offload chain. Allocation races are impossible in the
// normal path — only the offload-lock holder extends the chain — but
// the lookup still falls back to the catalog for lost races.
func (s *Stream) offloadDataset(n int) (*dasd.Dataset, error) {
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	name := fmt.Sprintf("LOGR.%s.OFF%04d", s.spec.Name, n)
	ds, err := s.mgr.farm.Dataset(name)
	if err == nil {
		return ds, nil
	}
	ds, err = s.mgr.farm.Allocate(s.mgr.volume, name, s.spec.OffloadBlocks)
	if err != nil {
		if ds2, err2 := s.mgr.farm.Dataset(name); err2 == nil {
			return ds2, nil
		}
		return nil, err
	}
	return ds, nil
}

// Offload forces an offload pass down to the low mark, regardless of
// occupancy. Returns the number of records moved.
func (s *Stream) Offload(ctx context.Context) (int, error) { return s.offloadOnce(ctx, true) }

// offloadOnce drains interim storage to DASD under the offload lock.
// The protocol is crash-idempotent in three phases:
//
//  1. write the drained records to DASD at the CTL cursor — blocks
//     beyond the cursor are garbage until committed, so a crashed
//     half-write is simply overwritten by the next attempt;
//  2. update CTL (frontier + cursor) — the commit point;
//  3. delete the offloaded entries from interim — leftovers below the
//     frontier are invisible to browse and reaped by the next pass.
//
// force=false is the mainline threshold check (no-op below the high
// mark, and skipped outright while another local goroutine is mid-
// pass); force=true drains regardless (list-full backpressure, tests).
func (s *Stream) offloadOnce(ctx context.Context, force bool) (int, error) {
	if force {
		s.passMu.Lock()
	} else if !s.passMu.TryLock() {
		return 0, nil // a local pass is already draining on our behalf
	}
	defer s.passMu.Unlock()
	m := s.mgr
	if err := s.list.SetLock(ctx, lockOffload, m.sys); err != nil {
		return 0, err
	}
	crashed := false
	defer func() {
		if !crashed {
			// If the release fails the serialized lock is retained;
			// recovery clears it — FailConnector purges a dead system's
			// locks, and a rebuild from a broken CF drops the stale
			// holder from the copied image. The pass itself succeeded.
			_ = s.list.ReleaseLock(vclock.Detach(ctx), lockOffload, m.sys)
		}
	}()
	start := m.clock.Now()
	c, err := s.readCTL(ctx)
	if err != nil {
		return 0, err
	}
	entries := s.list.Entries(listInterim) // keyed order == time order
	// Phase 0 (recovery): reap leftovers a crashed predecessor moved to
	// DASD but did not delete — exactly the CTL's pending set. Other
	// sub-frontier entries are stranded fresh writes (stamped before,
	// written after, a completed offload); their writer is mid-retract
	// and they must be neither browsed, re-offloaded, nor deleted here.
	pending := make(map[string]bool, len(c.Pending))
	for _, id := range c.Pending {
		pending[id] = true
	}
	var reap []string
	live := entries[:0]
	for _, e := range entries {
		if c.HighKey != "" && e.Key <= c.HighKey {
			if pending[e.ID] {
				reap = append(reap, e.ID)
			}
			continue
		}
		live = append(live, e)
	}
	if err := s.deleteInterim(ctx, reap); err != nil {
		return 0, err
	}
	n := len(live) - s.lowMark()
	if !force && len(live) < s.highMark() {
		return 0, nil
	}
	if n <= 0 {
		return 0, nil
	}
	toMove := live[:n]
	// Phase 1: DASD writes at the uncommitted cursor.
	cur := c
	var bytes int64
	var lastDS *dasd.Dataset
	for _, e := range toMove {
		if cur.NextBlock >= s.spec.OffloadBlocks {
			cur.NextDataset++
			cur.NextBlock = 0
		}
		ds, err := s.offloadDataset(cur.NextDataset)
		if err != nil {
			return 0, err
		}
		if err := ds.Write(m.sys, cur.NextBlock, e.Data); err != nil {
			return 0, err
		}
		lastDS = ds
		cur.NextBlock++
		bytes += int64(len(e.Data))
	}
	if s.ctlDS != nil && lastDS != nil {
		// Durable farm: the offload chain must be on stable storage
		// before any frontier — durable or CF — names its blocks.
		if err := lastDS.Sync(); err != nil {
			return 0, err
		}
	}
	if s.testCrash != nil && s.testCrash("dasd-written") {
		crashed = true
		return 0, errors.New("logr: simulated crash before CTL update")
	}
	// Phase 2: commit point.
	cur.HighKey = toMove[len(toMove)-1].Key
	cur.Offloaded = c.Offloaded + int64(n)
	cur.Pending = make([]string, n)
	for i, e := range toMove {
		cur.Pending[i] = e.ID
	}
	if s.ctlDS != nil {
		// The durable frontier shadow leads the CF commit: after a
		// whole-sysplex crash anywhere past this write, recovery reads
		// these records from the (already synced) offload chain instead
		// of staging. If the crash lands before the CF CTL write below,
		// a live peer simply redoes the pass — it re-writes the same
		// records to the same blocks, so the shadow stays consistent.
		if err := s.writeDurableCTL(cur); err != nil {
			return 0, err
		}
		if s.testCrash != nil && s.testCrash("durable-ctl") {
			crashed = true
			return 0, errors.New("logr: simulated crash after durable CTL, before CF CTL")
		}
	}
	if err := s.writeCTL(ctx, cur); err != nil {
		return 0, err
	}
	if s.testCrash != nil && s.testCrash("ctl-updated") {
		crashed = true
		return 0, errors.New("logr: simulated crash before interim cleanup")
	}
	// Phase 3: cleanup — one CF batch instead of a delete per record.
	if err := s.deleteInterim(ctx, cur.Pending); err != nil {
		return 0, err
	}
	m.reg.Counter("logr.offload.count").Inc()
	m.reg.Counter("logr.offload.records").Add(int64(n))
	m.reg.Counter("logr.offload.bytes").Add(bytes)
	m.reg.Histogram("logr.offload.duration").Observe(m.clock.Since(start))
	m.reg.Gauge("logr.interim.entries").Set(int64(s.list.Len(listInterim)))
	return n, nil
}

// deleteInterim removes the identified interim entries as one CF batch
// per chunk instead of a command per record — offload cleanup is the
// heaviest delete traffic the stream generates, and batching it turns
// N link crossings into one on a transport CF. Already-deleted entries
// are fine: both the phase-0 reap and phase-3 cleanup are idempotent
// retries of work a crashed predecessor may have half-finished.
func (s *Stream) deleteInterim(ctx context.Context, ids []string) error {
	m := s.mgr
	for start := 0; start < len(ids); start += cf.MaxBatchOps {
		end := start + cf.MaxBatchOps
		if end > len(ids) {
			end = len(ids)
		}
		chunk := ids[start:end]
		cmds := make([]cf.BatchCmd, len(chunk))
		for i, id := range chunk {
			cmds[i] = cf.BatchListDelete(m.sys, id, cf.Cond{})
		}
		errs, err := s.list.Batch(ctx, cmds)
		if err != nil {
			return err
		}
		for _, serr := range errs {
			if serr != nil && !errors.Is(serr, cf.ErrEntryNotFound) {
				return serr
			}
		}
	}
	return nil
}

// recoverOffload is the peer-takeover path: finish whatever a failed
// writer left behind — pending offload cleanup, plus any sub-frontier
// entries the dead system stranded (unacknowledged writes nobody will
// ever retract). Live systems' strandeds are left for their writers.
// It reports whether leftover work was found.
func (s *Stream) recoverOffload(ctx context.Context, failedSys string) (bool, error) {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	m := s.mgr
	if err := s.list.SetLock(ctx, lockOffload, m.sys); err != nil {
		return false, err
	}
	// Retained on failure; FailConnector or a rebuild from the broken
	// CF clears the stale holder.
	defer func() { _ = s.list.ReleaseLock(vclock.Detach(ctx), lockOffload, m.sys) }()
	c, err := s.readCTL(ctx)
	if err != nil {
		return false, err
	}
	pending := make(map[string]bool, len(c.Pending))
	for _, id := range c.Pending {
		pending[id] = true
	}
	did := false
	for _, e := range s.list.Entries(listInterim) {
		if c.HighKey == "" || e.Key > c.HighKey {
			continue
		}
		reap := pending[e.ID]
		if !reap {
			env, err := decodeEnvelope(e.Data)
			reap = err == nil && env.S == failedSys
		}
		if reap {
			if err := s.list.Delete(ctx, m.sys, e.ID, cf.Cond{}); err != nil && !errors.Is(err, cf.ErrEntryNotFound) {
				return did, err
			}
			did = true
		}
	}
	return did, nil
}

// Browse returns a cursor over every record of the stream in timestamp
// order, reading seamlessly across offloaded and interim data. The
// interim snapshot and offload frontier are captured atomically under
// the offload lock; DASD blocks below the captured cursor are
// immutable, so they are read lock-free afterwards.
func (s *Stream) Browse(ctx context.Context) (*Cursor, error) {
	m := s.mgr
	var c ctl
	var interim []cf.ListEntry
	for {
		if err := vclock.Check(ctx, m.clock); err != nil {
			return nil, err
		}
		s.passMu.Lock()
		if err := s.list.SetLock(ctx, lockOffload, m.sys); err != nil {
			s.passMu.Unlock()
			if errors.Is(err, cf.ErrLockHeld) {
				m.clock.Sleep(50 * time.Microsecond)
				continue
			}
			return nil, err
		}
		var err error
		c, err = s.readCTL(ctx)
		if err == nil {
			interim = s.list.Entries(listInterim)
		}
		// Retained on failure; FailConnector or a rebuild from the
		// broken CF clears the stale holder.
		_ = s.list.ReleaseLock(vclock.Detach(ctx), lockOffload, m.sys)
		s.passMu.Unlock()
		if err != nil {
			return nil, err
		}
		break
	}
	recs := make([]Record, 0, int(c.Offloaded)+len(interim))
	// Offloaded portion: datasets 0..NextDataset, blocks below cursor.
	for d := 0; d <= c.NextDataset; d++ {
		hi := s.spec.OffloadBlocks
		if d == c.NextDataset {
			hi = c.NextBlock
		}
		if hi == 0 {
			continue
		}
		ds, err := s.offloadDataset(d)
		if err != nil {
			return nil, err
		}
		for b := 0; b < hi; b++ {
			raw, err := ds.Read(m.sys, b)
			if err != nil {
				return nil, err
			}
			env, err := decodeEnvelope(raw)
			if err != nil {
				return nil, fmt.Errorf("logr: %s offload ds %d blk %d: %v", s.spec.Name, d, b, err)
			}
			recs = append(recs, env.record())
		}
	}
	// Interim portion: everything above the frontier. Entries at or
	// below it are either offload leftovers already represented on DASD
	// or stranded unacknowledged writes awaiting retraction — never
	// browsed either way.
	for _, e := range interim {
		if c.HighKey != "" && e.Key <= c.HighKey {
			continue
		}
		env, err := decodeEnvelope(e.Data)
		if err != nil {
			return nil, fmt.Errorf("logr: %s interim %s: %v", s.spec.Name, e.ID, err)
		}
		recs = append(recs, env.record())
	}
	m.reg.Counter("logr.browse.count").Inc()
	return &Cursor{recs: recs}, nil
}

func decodeEnvelope(raw []byte) (envelope, error) {
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end-- // DASD blocks are zero-padded
	}
	var env envelope
	if err := json.Unmarshal(raw[:end], &env); err != nil {
		return envelope{}, err
	}
	return env, nil
}

// Stats is a point-in-time stream summary.
type Stats struct {
	Interim   int   // current interim occupancy
	Offloaded int64 // records moved to DASD over the stream's life
}

// Stats snapshots the stream.
func (s *Stream) Stats(ctx context.Context) (Stats, error) {
	c, err := s.readCTL(ctx)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Interim: s.list.Len(listInterim), Offloaded: c.Offloaded}, nil
}

// Cursor iterates a browse snapshot in timestamp order.
type Cursor struct {
	recs []Record
	pos  int
}

// Next returns the next record; ok is false at end of stream.
func (c *Cursor) Next() (Record, bool) {
	if c.pos >= len(c.recs) {
		return Record{}, false
	}
	r := c.recs[c.pos]
	c.pos++
	return r, true
}

// Len returns the number of records in the snapshot.
func (c *Cursor) Len() int { return len(c.recs) }

// Records returns the remaining records without advancing the cursor.
func (c *Cursor) Records() []Record {
	return append([]Record(nil), c.recs[c.pos:]...)
}
