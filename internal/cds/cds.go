// Package cds implements couple data sets: the shared-disk state
// repositories of §3.2. A couple data set holds operating-system
// resource state (system status/heartbeats, group membership, policies)
// with:
//
//   - serialized access via hardware RESERVE with time-out logic that
//     breaks reserves held by faulty processors,
//   - duplexing across a primary and alternate dataset with hot
//     switching when the primary fails, and
//   - online re-duplexing onto a new alternate.
//
// Records are small key/value pairs; each value occupies one block, and
// the directory occupies a fixed extent at the front of the dataset.
package cds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
)

// Errors returned by Store operations.
var (
	ErrValueTooLarge = errors.New("cds: value exceeds one block")
	ErrFull          = errors.New("cds: couple data set full")
	ErrTimeout       = errors.New("cds: reserve timed out")
	ErrNoCopies      = errors.New("cds: all copies failed")
	ErrDirOverflow   = errors.New("cds: directory overflow")
	ErrChecksum      = errors.New("cds: record checksum mismatch (torn write)")
)

const (
	dirBlocks = 4 // blocks reserved for the directory at the front
	maxValue  = dasd.BlockSize - 8
	dirSpace  = dirBlocks * dasd.BlockSize
	// magicValue is the legacy (V1) directory magic: entries carry no
	// checksums. Still decoded so pre-upgrade datasets read cleanly.
	magicValue = 0xC0DB1996
	// magicV2 marks the checksummed directory layout: every entry
	// carries a CRC32 of its value and the directory itself is
	// CRC-trailered, so a torn write to either is detected on read and
	// falls back to the alternate copy.
	magicV2 = 0xC0DB1997
)

// Options tune serialization behaviour.
type Options struct {
	// ReserveTimeout bounds how long Update waits for the reserve
	// before consulting StaleHolder/giving up. Zero means 2s.
	ReserveTimeout time.Duration
	// RetryInterval between reserve attempts. Zero means 1ms.
	RetryInterval time.Duration
	// StaleHolder, if non-nil, reports whether the named system should
	// be treated as failed, allowing its reserve to be broken
	// immediately (the "special time-out logic to handle faulty
	// processors" of §3.2). Typically wired to XCF status monitoring.
	StaleHolder func(sys string) bool
}

// Store is a duplexed couple data set.
type Store struct {
	mu      sync.Mutex
	clock   vclock.Clock
	opts    Options
	primary *dasd.Dataset
	alt     *dasd.Dataset // nil when simplexed
	name    string

	switches int // hot switches performed
}

// New creates a Store over a primary and optional alternate dataset.
// Both datasets must have identical block counts when alt is non-nil.
func New(name string, clock vclock.Clock, primary, alt *dasd.Dataset, opts Options) (*Store, error) {
	if primary == nil {
		return nil, errors.New("cds: primary dataset required")
	}
	if alt != nil && alt.Blocks() != primary.Blocks() {
		return nil, errors.New("cds: primary and alternate sizes differ")
	}
	if primary.Blocks() <= dirBlocks {
		return nil, fmt.Errorf("cds: dataset %q too small", primary.Name())
	}
	if opts.ReserveTimeout == 0 {
		opts.ReserveTimeout = 2 * time.Second
	}
	if opts.RetryInterval == 0 {
		opts.RetryInterval = time.Millisecond
	}
	if clock == nil {
		clock = vclock.Real()
	}
	return &Store{name: name, clock: clock, opts: opts, primary: primary, alt: alt}, nil
}

// Name returns the couple data set name.
func (s *Store) Name() string { return s.name }

// Switches reports how many hot switches have occurred.
func (s *Store) Switches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// Duplexed reports whether an alternate copy is active.
func (s *Store) Duplexed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alt != nil
}

// directory maps key -> (block, length). Serialized into the directory
// extent.
type directory struct {
	entries map[string]dirEntry
}

type dirEntry struct {
	block  uint32
	length uint32
	sum    uint32 // CRC32 of the value; 0 on legacy V1 entries = unchecked
}

// encode lays the directory out in the V2 checksummed format:
// magic | count | {klen block length sum key}... | CRC32(everything before).
func (d *directory) encode() ([]byte, error) {
	keys := make([]string, 0, len(d.entries))
	for k := range d.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 8, 256)
	binary.BigEndian.PutUint32(buf[0:4], magicV2)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(keys)))
	for _, k := range keys {
		e := d.entries[k]
		var rec [14]byte
		binary.BigEndian.PutUint16(rec[0:2], uint16(len(k)))
		binary.BigEndian.PutUint32(rec[2:6], e.block)
		binary.BigEndian.PutUint32(rec[6:10], e.length)
		binary.BigEndian.PutUint32(rec[10:14], e.sum)
		buf = append(buf, rec[:]...)
		buf = append(buf, k...)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, trailer[:]...)
	if len(buf) > dirSpace {
		return nil, ErrDirOverflow
	}
	return buf, nil
}

func decodeDirectory(raw []byte) (*directory, error) {
	d := &directory{entries: make(map[string]dirEntry)}
	if len(raw) < 8 {
		return d, nil
	}
	magic := binary.BigEndian.Uint32(raw[0:4])
	if magic != magicValue && magic != magicV2 {
		return d, nil // unformatted: empty store
	}
	recSize := 10
	if magic == magicV2 {
		recSize = 14
	}
	n := binary.BigEndian.Uint32(raw[4:8])
	off := 8
	for i := uint32(0); i < n; i++ {
		if off+recSize > len(raw) {
			return nil, errors.New("cds: truncated directory")
		}
		klen := int(binary.BigEndian.Uint16(raw[off : off+2]))
		blk := binary.BigEndian.Uint32(raw[off+2 : off+6])
		vlen := binary.BigEndian.Uint32(raw[off+6 : off+10])
		var sum uint32
		if magic == magicV2 {
			sum = binary.BigEndian.Uint32(raw[off+10 : off+14])
		}
		off += recSize
		if off+klen > len(raw) {
			return nil, errors.New("cds: truncated directory key")
		}
		if vlen > maxValue {
			return nil, fmt.Errorf("cds: directory entry length %d exceeds block", vlen)
		}
		key := string(raw[off : off+klen])
		off += klen
		d.entries[key] = dirEntry{block: blk, length: vlen, sum: sum}
	}
	if magic == magicV2 {
		if off+4 > len(raw) {
			return nil, errors.New("cds: directory trailer missing")
		}
		want := binary.BigEndian.Uint32(raw[off : off+4])
		if crc32.ChecksumIEEE(raw[:off]) != want {
			return nil, fmt.Errorf("%w: directory", ErrChecksum)
		}
	}
	return d, nil
}

// View is the read snapshot handed to Update closures.
type View struct {
	dir     *directory
	store   *Store
	sys     string
	changed map[string][]byte // staged writes (nil slice = delete)
}

// Get returns the value for key and whether it exists, honoring writes
// staged earlier in the same Update.
func (v *View) Get(key string) ([]byte, bool, error) {
	if val, ok := v.changed[key]; ok {
		if val == nil {
			return nil, false, nil
		}
		out := make([]byte, len(val))
		copy(out, val)
		return out, true, nil
	}
	e, ok := v.dir.entries[key]
	if !ok {
		return nil, false, nil
	}
	raw, err := v.store.readValue(v.sys, e)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, e.length)
	copy(out, raw[:e.length])
	return out, true, nil
}

// Set stages a write of key=val (val must fit one block).
func (v *View) Set(key string, val []byte) error {
	if len(val) > maxValue {
		return ErrValueTooLarge
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	v.changed[key] = cp
	return nil
}

// Delete stages removal of key.
func (v *View) Delete(key string) { v.changed[key] = nil }

// Keys returns all keys visible in this view (committed + staged),
// sorted.
func (v *View) Keys() []string {
	set := make(map[string]bool)
	for k := range v.dir.entries {
		set[k] = true
	}
	for k, val := range v.changed {
		if val == nil {
			delete(set, k)
		} else {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Read performs a serialized read of a single key on behalf of sys.
func (s *Store) Read(sys, key string) ([]byte, bool, error) {
	var val []byte
	var ok bool
	err := s.Update(sys, func(v *View) error {
		var err error
		val, ok, err = v.Get(key)
		return err
	})
	return val, ok, err
}

// Keys performs a serialized listing on behalf of sys.
func (s *Store) Keys(sys string) ([]string, error) {
	var keys []string
	err := s.Update(sys, func(v *View) error {
		keys = v.Keys()
		return nil
	})
	return keys, err
}

// Update runs fn under the couple data set serialization (hardware
// reserve on the primary's volume) and atomically commits staged
// changes to all copies. If fn returns an error nothing is written.
func (s *Store) Update(sys string, fn func(*View) error) error {
	vol, err := s.acquire(sys)
	if err != nil {
		return err
	}
	defer vol.Release(sys)

	dir, dirErr := s.loadDirectory(sys)
	if dirErr != nil {
		return dirErr
	}
	view := &View{dir: dir, store: s, sys: sys, changed: make(map[string][]byte)}
	if err := fn(view); err != nil {
		return err
	}
	if len(view.changed) == 0 {
		return nil
	}
	return s.commit(sys, dir, view.changed)
}

// acquire obtains the reserve with retry, break-on-stale-holder, and
// timeout semantics. It returns the reserved volume so the caller
// releases the same device even if a hot switch happens meanwhile.
func (s *Store) acquire(sys string) (*dasd.Volume, error) {
	deadline := s.clock.Now().Add(s.opts.ReserveTimeout)
	for {
		vol := s.primaryVolume()
		err := vol.Reserve(sys)
		if err == nil {
			return vol, nil
		}
		if errors.Is(err, dasd.ErrBroken) {
			if !s.Duplexed() {
				return nil, err
			}
			s.hotSwitch()
			continue
		}
		if errors.Is(err, dasd.ErrReserved) && s.opts.StaleHolder != nil {
			if h := vol.ReserveHolder(); h != "" && h != sys && s.opts.StaleHolder(h) {
				vol.BreakReserve(h)
				continue
			}
		}
		if errors.Is(err, dasd.ErrFenced) {
			return nil, err
		}
		if !s.clock.Now().Before(deadline) {
			return nil, fmt.Errorf("%w: holder %s", ErrTimeout, vol.ReserveHolder())
		}
		s.clock.Sleep(s.opts.RetryInterval)
	}
}

func (s *Store) primaryVolume() *dasd.Volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary.Volume()
}

func (s *Store) copies() (*dasd.Dataset, *dasd.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary, s.alt
}

// readBlock reads from the primary, hot-switching to the alternate on
// failure.
func (s *Store) readBlock(sys string, blk int) ([]byte, error) {
	pri, alt := s.copies()
	raw, err := pri.Read(sys, blk)
	if err == nil {
		return raw, nil
	}
	if alt == nil {
		return nil, err
	}
	s.hotSwitch()
	pri, _ = s.copies()
	return pri.Read(sys, blk)
}

// readValue reads a record's block and verifies the directory's CRC of
// it. A dasd-level failure or a checksum mismatch (a torn value write)
// falls back to the alternate copy via hot switch, the same path a
// broken device takes.
func (s *Store) readValue(sys string, e dirEntry) ([]byte, error) {
	pri, alt := s.copies()
	raw, err := readVerified(pri, sys, e)
	if err == nil {
		return raw, nil
	}
	if alt == nil {
		return nil, err
	}
	s.hotSwitch()
	pri, _ = s.copies()
	return readVerified(pri, sys, e)
}

func readVerified(ds *dasd.Dataset, sys string, e dirEntry) ([]byte, error) {
	raw, err := ds.Read(sys, int(e.block))
	if err != nil {
		return nil, err
	}
	if e.sum != 0 && crc32.ChecksumIEEE(raw[:e.length]) != e.sum {
		return nil, fmt.Errorf("%w: block %d of %s", ErrChecksum, e.block, ds.Name())
	}
	return raw, nil
}

// writeBlock writes to every active copy. A primary failure triggers a
// hot switch; an alternate failure drops to simplex mode.
func (s *Store) writeBlock(sys string, blk int, data []byte) error {
	pri, alt := s.copies()
	priErr := pri.Write(sys, blk, data)
	var altErr error
	if alt != nil {
		altErr = alt.Write(sys, blk, data)
	}
	switch {
	case priErr == nil && altErr == nil:
		return nil
	case priErr != nil && alt != nil && altErr == nil:
		s.hotSwitch()
		return nil
	case priErr == nil && altErr != nil:
		s.dropAlternate()
		return nil
	default:
		if alt == nil {
			return priErr
		}
		return ErrNoCopies
	}
}

// hotSwitch promotes the alternate to primary.
func (s *Store) hotSwitch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.alt == nil {
		return
	}
	s.primary = s.alt
	s.alt = nil
	s.switches++
}

func (s *Store) dropAlternate() {
	s.mu.Lock()
	s.alt = nil
	s.mu.Unlock()
}

// SetAlternate re-duplexes the store onto ds by copying every block of
// the primary, then activating ds as the alternate ("online add of a
// new alternate").
func (s *Store) SetAlternate(sys string, ds *dasd.Dataset) error {
	pri, _ := s.copies()
	if ds.Blocks() != pri.Blocks() {
		return errors.New("cds: alternate size differs from primary")
	}
	vol, err := s.acquire(sys)
	if err != nil {
		return err
	}
	defer vol.Release(sys)
	for blk := 0; blk < pri.Blocks(); blk++ {
		raw, err := pri.Read(sys, blk)
		if err != nil {
			return err
		}
		if err := ds.Write(sys, blk, raw); err != nil {
			return err
		}
	}
	if err := ds.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	s.alt = ds
	s.mu.Unlock()
	return nil
}

// loadDirectory reads and decodes the directory extent. A decode
// failure (torn directory write caught by the trailer CRC) falls back
// to the alternate copy, mirroring readValue.
func (s *Store) loadDirectory(sys string) (*directory, error) {
	raw, err := s.readDirRaw(sys)
	if err != nil {
		return nil, err
	}
	dir, derr := decodeDirectory(raw)
	if derr == nil {
		return dir, nil
	}
	if !s.Duplexed() {
		return nil, derr
	}
	s.hotSwitch()
	raw, err = s.readDirRaw(sys)
	if err != nil {
		return nil, err
	}
	return decodeDirectory(raw)
}

func (s *Store) readDirRaw(sys string) ([]byte, error) {
	var raw []byte
	for blk := 0; blk < dirBlocks; blk++ {
		b, err := s.readBlock(sys, blk)
		if err != nil {
			return nil, err
		}
		raw = append(raw, b...)
	}
	return raw, nil
}

func (s *Store) storeDirectory(sys string, dir *directory) error {
	raw, err := dir.encode()
	if err != nil {
		return err
	}
	padded := make([]byte, dirSpace)
	copy(padded, raw)
	for blk := 0; blk < dirBlocks; blk++ {
		if err := s.writeBlock(sys, blk, padded[blk*dasd.BlockSize:(blk+1)*dasd.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// commit applies staged changes: assigns blocks to new keys, writes
// values, syncs, then writes the directory and syncs again.
// Directory-last plus the sync barrier between values and directory
// gives crash atomicity at the granularity of whole Update calls: a
// crash anywhere leaves either the old directory over old values or
// the new directory over durable new values (syncs are no-ops on an
// in-memory farm, where the process is the failure domain anyway).
func (s *Store) commit(sys string, dir *directory, changed map[string][]byte) error {
	pri, _ := s.copies()
	used := make(map[uint32]bool)
	for _, e := range dir.entries {
		used[e.block] = true
	}
	// Blocks freed by deletes in THIS commit are reused only as a last
	// resort: if the commit crashes before the directory write, the
	// still-durable old directory maps the deleted key at the reused
	// block, and the new bytes under it read back as a checksum error
	// instead of the key's old value. Preferring never-used blocks
	// keeps that window shut whenever space allows.
	var freed []uint32
	alloc := func() (uint32, error) {
		for blk := uint32(dirBlocks); blk < uint32(pri.Blocks()); blk++ {
			if !used[blk] {
				used[blk] = true
				return blk, nil
			}
		}
		if len(freed) > 0 {
			blk := freed[0]
			freed = freed[1:]
			return blk, nil
		}
		return 0, ErrFull
	}
	keys := make([]string, 0, len(changed))
	for k := range changed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Deletes first, so their last-resort blocks are visible to every
	// set in this commit regardless of key order.
	for _, key := range keys {
		if changed[key] == nil {
			if e, ok := dir.entries[key]; ok {
				freed = append(freed, e.block)
				delete(dir.entries, key)
			}
		}
	}
	for _, key := range keys {
		val := changed[key]
		if val == nil {
			continue
		}
		e, ok := dir.entries[key]
		if !ok {
			blk, err := alloc()
			if err != nil {
				return err
			}
			e = dirEntry{block: blk}
		}
		e.length = uint32(len(val))
		e.sum = crc32.ChecksumIEEE(val)
		if err := s.writeBlock(sys, int(e.block), val); err != nil {
			return err
		}
		dir.entries[key] = e
	}
	if err := s.syncCopies(); err != nil {
		return err
	}
	if err := s.storeDirectory(sys, dir); err != nil {
		return err
	}
	return s.syncCopies()
}

// syncCopies flushes both copies' volumes. A primary sync failure hot
// switches (the device's state is unknown, like a broken device); an
// alternate failure drops to simplex.
func (s *Store) syncCopies() error {
	pri, alt := s.copies()
	priErr := pri.Sync()
	var altErr error
	if alt != nil {
		altErr = alt.Sync()
	}
	switch {
	case priErr == nil && altErr == nil:
		return nil
	case priErr != nil && alt != nil && altErr == nil:
		s.hotSwitch()
		return nil
	case priErr == nil && altErr != nil:
		s.dropAlternate()
		return nil
	default:
		if alt == nil {
			return priErr
		}
		return ErrNoCopies
	}
}
