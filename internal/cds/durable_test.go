package cds

import (
	"bytes"
	"errors"
	"testing"

	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
)

// durableStore builds a duplexed store over two file-backed volumes
// rooted at dir, mirroring the façade's CPLEX1/CPLEX2 layout.
func durableStore(t *testing.T, dir string) (*Store, *dasd.Farm) {
	t.Helper()
	farm, err := dasd.OpenFarm(vclock.Real(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, vs := range []string{"CPLEX1", "CPLEX2"} {
		if _, err := farm.AddVolume(vs, 64, 2); err != nil {
			t.Fatal(err)
		}
	}
	pri, err := farm.Dataset("TEST.CDS01")
	if err != nil {
		if pri, err = farm.Allocate("CPLEX1", "TEST.CDS01", 32); err != nil {
			t.Fatal(err)
		}
	}
	alt, err := farm.Dataset("TEST.CDS02")
	if err != nil {
		if alt, err = farm.Allocate("CPLEX2", "TEST.CDS02", 32); err != nil {
			t.Fatal(err)
		}
	}
	st, err := New("TEST.CDS", vclock.Real(), pri, alt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, farm
}

// TestReopenFromDisk writes records, tears the farm down, reopens the
// same directory, and reads the records back through a fresh Store.
func TestReopenFromDisk(t *testing.T) {
	dir := t.TempDir()
	st, farm := durableStore(t, dir)
	err := st.Update("SYS1", func(v *View) error {
		if err := v.Set("xcf.status.SYS1", []byte("active")); err != nil {
			return err
		}
		return v.Set("arm.element.DB2.A", []byte(`{"state":"ready"}`))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := farm.Close(); err != nil {
		t.Fatal(err)
	}

	st2, farm2 := durableStore(t, dir)
	defer farm2.Close()
	val, ok, err := st2.Read("SYS2", "arm.element.DB2.A")
	if err != nil || !ok {
		t.Fatalf("record lost across restart: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(val, []byte(`{"state":"ready"}`)) {
		t.Fatalf("value = %q", val)
	}
	keys, err := st2.Keys("SYS2")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
}

// TestTornValueFallsBackToAlternate corrupts the primary copy of a
// record on the live store and expects the read to detect the bad
// checksum and return the alternate's copy.
func TestTornValueFallsBackToAlternate(t *testing.T) {
	st, farm := durableStore(t, t.TempDir())
	defer farm.Close()
	if err := st.Update("SYS1", func(v *View) error { return v.Set("key", []byte("good value")) }); err != nil {
		t.Fatal(err)
	}
	// Find the record's block and corrupt it on the primary only,
	// bypassing the store (a torn hardware write).
	dir, err := st.loadDirectory("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	e := dir.entries["key"]
	pri, _ := st.copies()
	if err := pri.Write("SYS1", int(e.block), []byte("garbage!!!")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := st.Read("SYS1", "key")
	if err != nil || !ok {
		t.Fatalf("read after torn primary: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(val, []byte("good value")) {
		t.Fatalf("val = %q, want the alternate's copy", val)
	}
	if st.Switches() == 0 {
		t.Fatal("no hot switch recorded")
	}
}

// TestTornValueSimplexDetected: with no alternate, a torn record must
// surface ErrChecksum, never the corrupt bytes.
func TestTornValueSimplexDetected(t *testing.T) {
	farm := dasd.NewFarm(vclock.Real())
	if _, err := farm.AddVolume("VOL001", 64, 1); err != nil {
		t.Fatal(err)
	}
	pri, err := farm.Allocate("VOL001", "SIMPLEX.CDS", 32)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New("SIMPLEX", vclock.Real(), pri, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Update("SYS1", func(v *View) error { return v.Set("key", []byte("value")) }); err != nil {
		t.Fatal(err)
	}
	dir, err := st.loadDirectory("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	if err := pri.Write("SYS1", int(dir.entries["key"].block), []byte("xxxxx")); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Read("SYS1", "key")
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// FuzzDecodeDirectory mirrors the cflink codec fuzz for the on-disk
// directory decoder: arbitrary bytes must yield a directory or an
// error — never a panic, never an entry pointing past a block.
func FuzzDecodeDirectory(f *testing.F) {
	good, _ := (&directory{entries: map[string]dirEntry{
		"xcf.status.SYS1": {block: 7, length: 12, sum: 0xDEADBEEF},
		"policy.cfrm":     {block: 9, length: 100, sum: 1},
	}}).encode()
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	f.Add(make([]byte, dirSpace))
	f.Add([]byte{0xC0, 0xDB, 0x19, 0x97, 0xFF, 0xFF, 0xFF, 0xFF}) // forged count
	f.Add([]byte{0xC0, 0xDB, 0x19, 0x96, 0, 0, 0, 1, 0, 2, 0, 0, 0, 1, 0, 0, 0, 3, 'h', 'i'})

	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := decodeDirectory(raw)
		if err != nil {
			return
		}
		for k, e := range d.entries {
			if int(e.length) > maxValue {
				t.Fatalf("entry %q length %d exceeds block", k, e.length)
			}
		}
		// A decoded directory must re-encode and decode to the same
		// entries (round-trip identity), unless it overflows.
		enc, err := d.encode()
		if err != nil {
			return
		}
		d2, err := decodeDirectory(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(d2.entries) != len(d.entries) {
			t.Fatalf("round trip lost entries: %d != %d", len(d2.entries), len(d.entries))
		}
	})
}
