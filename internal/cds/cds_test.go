package cds

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
)

// twoVolumeStore builds a duplexed store with primary and alternate on
// separate volumes so device failures can be injected independently.
func twoVolumeStore(t *testing.T, opts Options) (*Store, *dasd.Farm, *dasd.Volume, *dasd.Volume) {
	t.Helper()
	f := dasd.NewFarm(vclock.Real())
	v1, err := f.AddVolume("CDS001", 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := f.AddVolume("CDS002", 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	pri, err := f.Allocate("CDS001", "SYSPLEX.CDS.PRI", 32)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := f.Allocate("CDS002", "SYSPLEX.CDS.ALT", 32)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New("SYSPLEX", vclock.Real(), pri, alt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, f, v1, v2
}

func TestSetGetDelete(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{})
	err := st.Update("SYS1", func(v *View) error {
		if err := v.Set("sys.status.SYS1", []byte("active")); err != nil {
			return err
		}
		return v.Set("sys.status.SYS2", []byte("active"))
	})
	if err != nil {
		t.Fatal(err)
	}
	val, ok, err := st.Read("SYS2", "sys.status.SYS1")
	if err != nil || !ok || string(val) != "active" {
		t.Fatalf("read = %q ok=%v err=%v", val, ok, err)
	}
	if err := st.Update("SYS1", func(v *View) error { v.Delete("sys.status.SYS1"); return nil }); err != nil {
		t.Fatal(err)
	}
	_, ok, _ = st.Read("SYS1", "sys.status.SYS1")
	if ok {
		t.Fatal("deleted key still present")
	}
	keys, err := st.Keys("SYS1")
	if err != nil || len(keys) != 1 || keys[0] != "sys.status.SYS2" {
		t.Fatalf("keys = %v err=%v", keys, err)
	}
}

func TestUpdateStagedVisibility(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{})
	err := st.Update("SYS1", func(v *View) error {
		v.Set("k", []byte("v1"))
		got, ok, err := v.Get("k")
		if err != nil || !ok || string(got) != "v1" {
			return fmt.Errorf("staged write invisible: %q %v %v", got, ok, err)
		}
		v.Delete("k")
		if _, ok, _ := v.Get("k"); ok {
			return errors.New("staged delete invisible")
		}
		v.Set("k", []byte("v2"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	val, ok, _ := st.Read("SYS1", "k")
	if !ok || string(val) != "v2" {
		t.Fatalf("final value = %q ok=%v", val, ok)
	}
}

func TestUpdateErrorAborts(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{})
	boom := errors.New("boom")
	err := st.Update("SYS1", func(v *View) error {
		v.Set("k", []byte("x"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok, _ := st.Read("SYS1", "k"); ok {
		t.Fatal("aborted update committed")
	}
}

func TestValueTooLarge(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{})
	err := st.Update("SYS1", func(v *View) error {
		return v.Set("big", make([]byte, dasd.BlockSize))
	})
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreFull(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{})
	// 32 blocks - 4 directory = 28 value slots.
	err := st.Update("SYS1", func(v *View) error {
		for i := 0; i < 28; i++ {
			if err := v.Set(fmt.Sprintf("k%02d", i), []byte("x")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = st.Update("SYS1", func(v *View) error { return v.Set("overflow", []byte("x")) })
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
	// Deleting frees a slot.
	if err := st.Update("SYS1", func(v *View) error { v.Delete("k00"); return v.Set("new", []byte("y")) }); err != nil {
		t.Fatal(err)
	}
}

func TestSerializedConcurrentUpdates(t *testing.T) {
	st, _, _, _ := twoVolumeStore(t, Options{ReserveTimeout: 10 * time.Second})
	var wg sync.WaitGroup
	const nSys, nIter = 4, 25
	for s := 0; s < nSys; s++ {
		sys := fmt.Sprintf("SYS%d", s+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < nIter; i++ {
				err := st.Update(sys, func(v *View) error {
					raw, _, err := v.Get("counter")
					if err != nil {
						return err
					}
					count := 0
					if len(raw) > 0 {
						fmt.Sscanf(string(raw), "%d", &count)
					}
					return v.Set("counter", []byte(fmt.Sprintf("%d", count+1)))
				})
				if err != nil {
					t.Errorf("%s: %v", sys, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	raw, ok, err := st.Read("SYS1", "counter")
	if err != nil || !ok {
		t.Fatalf("read: %v ok=%v", err, ok)
	}
	want := fmt.Sprintf("%d", nSys*nIter)
	if string(raw) != want {
		t.Fatalf("counter = %s, want %s (lost updates: access not serialized)", raw, want)
	}
}

func TestStaleHolderReserveBroken(t *testing.T) {
	failed := map[string]bool{}
	var mu sync.Mutex
	st, _, v1, _ := twoVolumeStore(t, Options{
		ReserveTimeout: 200 * time.Millisecond,
		StaleHolder: func(sys string) bool {
			mu.Lock()
			defer mu.Unlock()
			return failed[sys]
		},
	})
	// SYSDEAD grabs the reserve and "dies".
	if err := v1.Reserve("SYSDEAD"); err != nil {
		t.Fatal(err)
	}
	// Without the stale-holder callback firing, updates time out.
	err := st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("x")) })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	// Declare SYSDEAD failed: the reserve is broken and the update goes through.
	mu.Lock()
	failed["SYSDEAD"] = true
	mu.Unlock()
	if err := st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("x")) }); err != nil {
		t.Fatal(err)
	}
}

func TestHotSwitchOnPrimaryFailure(t *testing.T) {
	st, _, v1, _ := twoVolumeStore(t, Options{})
	if err := st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("before")) }); err != nil {
		t.Fatal(err)
	}
	if !st.Duplexed() {
		t.Fatal("store should start duplexed")
	}
	v1.SetBroken(true) // primary device dies
	// Reads and writes keep working off the alternate.
	val, ok, err := st.Read("SYS1", "k")
	if err != nil || !ok || string(val) != "before" {
		t.Fatalf("read after failure: %q ok=%v err=%v", val, ok, err)
	}
	if err := st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("after")) }); err != nil {
		t.Fatalf("update after failure: %v", err)
	}
	if st.Switches() == 0 {
		t.Fatal("no hot switch recorded")
	}
	if st.Duplexed() {
		t.Fatal("store should be simplexed after switch")
	}
	val, _, _ = st.Read("SYS1", "k")
	if string(val) != "after" {
		t.Fatalf("value after switch = %q", val)
	}
}

func TestReduplexAfterSwitch(t *testing.T) {
	st, f, v1, _ := twoVolumeStore(t, Options{})
	st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("data")) })
	v1.SetBroken(true)
	st.Read("SYS1", "k") // force the switch
	// Bring a new alternate online.
	f.AddVolume("CDS003", 64, 2)
	newAlt, err := f.Allocate("CDS003", "SYSPLEX.CDS.NEWALT", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetAlternate("SYS1", newAlt); err != nil {
		t.Fatal(err)
	}
	if !st.Duplexed() {
		t.Fatal("not duplexed after SetAlternate")
	}
	// Fail the (former alternate, now primary) second volume; the fresh
	// alternate must carry the data.
	vol2, _ := f.Volume("CDS002")
	vol2.SetBroken(true)
	val, ok, err := st.Read("SYS1", "k")
	if err != nil || !ok || string(val) != "data" {
		t.Fatalf("read off re-duplexed copy: %q ok=%v err=%v", val, ok, err)
	}
	if st.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", st.Switches())
	}
}

func TestAllCopiesFailed(t *testing.T) {
	st, _, v1, v2 := twoVolumeStore(t, Options{ReserveTimeout: 50 * time.Millisecond})
	v1.SetBroken(true)
	v2.SetBroken(true)
	err := st.Update("SYS1", func(v *View) error { return v.Set("k", []byte("x")) })
	if err == nil {
		t.Fatal("update succeeded with all copies failed")
	}
}

func TestSimplexStore(t *testing.T) {
	f := dasd.NewFarm(vclock.Real())
	f.AddVolume("V", 64, 1)
	pri, _ := f.Allocate("V", "CDS", 32)
	st, err := New("X", vclock.Real(), pri, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplexed() {
		t.Fatal("simplex store reports duplexed")
	}
	if err := st.Update("SYS1", func(v *View) error { return v.Set("a", []byte("1")) }); err != nil {
		t.Fatal(err)
	}
	val, ok, _ := st.Read("SYS1", "a")
	if !ok || string(val) != "1" {
		t.Fatalf("val = %q", val)
	}
}

func TestNewValidation(t *testing.T) {
	f := dasd.NewFarm(vclock.Real())
	f.AddVolume("V", 64, 1)
	small, _ := f.Allocate("V", "SMALL", 4)
	big, _ := f.Allocate("V", "BIG", 32)
	other, _ := f.Allocate("V", "OTHER", 16)
	if _, err := New("X", vclock.Real(), nil, nil, Options{}); err == nil {
		t.Fatal("nil primary accepted")
	}
	if _, err := New("X", vclock.Real(), small, nil, Options{}); err == nil {
		t.Fatal("too-small primary accepted")
	}
	if _, err := New("X", vclock.Real(), big, other, Options{}); err == nil {
		t.Fatal("size-mismatched alternate accepted")
	}
}

func TestPersistenceAcrossStoreInstances(t *testing.T) {
	f := dasd.NewFarm(vclock.Real())
	f.AddVolume("V", 64, 1)
	pri, _ := f.Allocate("V", "CDS", 32)
	st1, _ := New("X", vclock.Real(), pri, nil, Options{})
	st1.Update("SYS1", func(v *View) error { return v.Set("persist", []byte("yes")) })
	// A brand-new Store over the same dataset (e.g. after sysplex re-IPL)
	// sees the data.
	st2, _ := New("X", vclock.Real(), pri, nil, Options{})
	val, ok, err := st2.Read("SYS2", "persist")
	if err != nil || !ok || string(val) != "yes" {
		t.Fatalf("val = %q ok=%v err=%v", val, ok, err)
	}
}

// Property: an arbitrary sequence of Set/Delete matches a map oracle.
func TestStoreMatchesMapOracleProperty(t *testing.T) {
	type op struct {
		Key uint8
		Del bool
		Val uint16
	}
	f := func(ops []op) bool {
		farm := dasd.NewFarm(vclock.Real())
		farm.AddVolume("V", 128, 1)
		pri, _ := farm.Allocate("V", "CDS", 64)
		st, _ := New("X", vclock.Real(), pri, nil, Options{})
		oracle := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			err := st.Update("SYS1", func(v *View) error {
				if o.Del {
					v.Delete(key)
					return nil
				}
				return v.Set(key, []byte(fmt.Sprintf("%d", o.Val)))
			})
			if err != nil {
				return false
			}
			if o.Del {
				delete(oracle, key)
			} else {
				oracle[key] = []byte(fmt.Sprintf("%d", o.Val))
			}
		}
		for k, want := range oracle {
			got, ok, err := st.Read("SYS1", k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		keys, _ := st.Keys("SYS1")
		return len(keys) == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
