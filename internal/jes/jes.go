// Package jes implements a JES2-style multi-system shared job queue on
// a CF list structure (§5.1 names JES2 as a base MVS exploiter; §3.3.3
// describes exactly this use: "queueing mechanisms for workload
// distribution", shared work queues with list-transition signalling).
//
// Jobs are submitted to a shared input queue. Every system runs an
// Executor that registers list-transition interest: when the input
// queue goes non-empty the CF sets a bit in the executor's notification
// vector — observed by local polling, no interrupt — and the executor
// atomically pops a job, moves it through the active queue, runs it,
// and posts the output. Jobs in flight on a failed system are requeued
// by peers (checkpoint takeover).
package jes

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/vclock"
)

// Errors returned by the queue.
var (
	ErrNoHandler = errors.New("jes: no handler for job class")
	ErrNotDone   = errors.New("jes: job not complete")
	ErrNotFound  = errors.New("jes: no such job")
)

// List indexes within the checkpoint structure.
const (
	inputList  = 0
	activeList = 1
	doneList   = 2
	numLists   = 3
)

// Job is one unit of batch work.
type Job struct {
	ID          string `json:"id"`
	Class       string `json:"class"`
	Payload     []byte `json:"payload"`
	SubmittedBy string `json:"submitted_by"`
	RanOn       string `json:"ran_on,omitempty"`
	Output      []byte `json:"output,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Queue is the shared job queue; all systems use the same Queue value
// (or equivalent values over the same structure).
type Queue struct {
	conn string

	mu     sync.Mutex
	ls     cf.List
	nextID uint64
}

// structure returns the current list structure under the lock so a
// concurrent Rebind is observed atomically.
func (q *Queue) structure() cf.List {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ls
}

// Rebind rebuilds the checkpoint into a new list structure (CF
// structure rebuild): all queued, active, and completed entries are
// copied over. The old structure must still be readable (planned
// rebuild).
func (q *Queue) Rebind(ctx context.Context, newLS cf.List) error {
	if newLS.Lists() < numLists {
		return fmt.Errorf("jes: structure needs >= %d lists", numLists)
	}
	if err := newLS.Connect(ctx, q.conn, nil); err != nil {
		return err
	}
	old := q.structure()
	for list := 0; list < numLists; list++ {
		for _, e := range old.Entries(list) {
			if err := newLS.Write(ctx, q.conn, list, e.ID, e.Key, e.Data, cf.FIFO, cf.Cond{}); err != nil {
				return err
			}
		}
	}
	q.mu.Lock()
	q.ls = newLS
	q.mu.Unlock()
	return nil
}

// NewQueue creates the queue over a list structure with at least three
// lists. The conn identity is used for CF commands issued on behalf of
// the submitting side.
func NewQueue(ctx context.Context, ls cf.List, conn string) (*Queue, error) {
	if ls.Lists() < numLists {
		return nil, fmt.Errorf("jes: structure needs >= %d lists", numLists)
	}
	if err := ls.Connect(ctx, conn, nil); err != nil {
		return nil, err
	}
	return &Queue{ls: ls, conn: conn}, nil
}

// Submit places a job on the shared input queue and returns its ID.
// The empty→non-empty transition wakes every registered executor.
func (q *Queue) Submit(ctx context.Context, class string, payload []byte, submitter string) (string, error) {
	q.mu.Lock()
	q.nextID++
	id := fmt.Sprintf("JOB%06d", q.nextID)
	q.mu.Unlock()
	job := Job{ID: id, Class: class, Payload: payload, SubmittedBy: submitter}
	raw, err := json.Marshal(job)
	if err != nil {
		return "", err
	}
	if err := q.structure().Write(ctx, q.conn, inputList, id, "", raw, cf.FIFO, cf.Cond{}); err != nil {
		return "", err
	}
	return id, nil
}

// Result fetches a completed job.
func (q *Queue) Result(ctx context.Context, id string) (Job, error) {
	e, err := q.structure().Read(ctx, q.conn, id, cf.Cond{})
	if err != nil {
		return Job{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	var job Job
	if err := json.Unmarshal(e.Data, &job); err != nil {
		return Job{}, err
	}
	if e.List != doneList {
		return Job{}, fmt.Errorf("%w: %s", ErrNotDone, id)
	}
	return job, nil
}

// Pending returns the input queue depth.
func (q *Queue) Pending() int { return q.structure().Len(inputList) }

// Active returns the in-flight job count.
func (q *Queue) Active() int { return q.structure().Len(activeList) }

// Done returns the completed job count.
func (q *Queue) Done() int { return q.structure().Len(doneList) }

// RequeueOrphans moves jobs that were active on a failed system back to
// the input queue (checkpoint takeover by a peer). Returns the job IDs
// requeued.
func (q *Queue) RequeueOrphans(ctx context.Context, failedSys string) ([]string, error) {
	var requeued []string
	ls := q.structure()
	for _, e := range ls.Entries(activeList) {
		var job Job
		if err := json.Unmarshal(e.Data, &job); err != nil {
			continue
		}
		if job.RanOn != failedSys {
			continue
		}
		job.RanOn = ""
		raw, err := json.Marshal(job)
		if err != nil {
			continue
		}
		if err := ls.Write(ctx, q.conn, activeList, job.ID, "", raw, cf.FIFO, cf.Cond{}); err != nil {
			continue
		}
		if err := ls.Move(ctx, q.conn, job.ID, inputList, cf.FIFO, cf.Cond{}); err != nil {
			continue
		}
		requeued = append(requeued, job.ID)
	}
	sort.Strings(requeued)
	return requeued, nil
}

// Handler executes one job class.
type Handler func(payload []byte) ([]byte, error)

// Executor runs jobs on one system.
type Executor struct {
	sys   string
	clock vclock.Clock
	vec   *cf.BitVector

	mu       sync.Mutex
	ls       cf.List
	handlers map[string]Handler
	executed int64
	stopped  bool
	stopCh   chan struct{}
}

// NewExecutor attaches an executor for system sys to the queue's
// structure and registers transition monitoring of the input list.
func NewExecutor(ctx context.Context, ls cf.List, sys string, clock vclock.Clock) (*Executor, error) {
	if clock == nil {
		clock = vclock.Real()
	}
	e := &Executor{
		sys:      sys,
		ls:       ls,
		clock:    clock,
		vec:      cf.NewBitVector(1),
		handlers: make(map[string]Handler),
		stopCh:   make(chan struct{}),
	}
	if err := ls.Connect(ctx, sys, e.vec); err != nil {
		return nil, err
	}
	if err := ls.Monitor(ctx, sys, inputList, 0); err != nil {
		return nil, err
	}
	return e, nil
}

// structure returns the current list structure under the lock.
func (e *Executor) structure() cf.List {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ls
}

// Rebind moves the executor onto a rebuilt structure: reconnect and
// re-register transition monitoring.
func (e *Executor) Rebind(ctx context.Context, newLS cf.List) error {
	if err := newLS.Connect(ctx, e.sys, e.vec); err != nil {
		return err
	}
	if err := newLS.Monitor(ctx, e.sys, inputList, 0); err != nil {
		return err
	}
	e.mu.Lock()
	e.ls = newLS
	e.mu.Unlock()
	return nil
}

// Register installs the handler for a job class.
func (e *Executor) Register(class string, h Handler) {
	e.mu.Lock()
	e.handlers[class] = h
	e.mu.Unlock()
}

// Executed reports how many jobs this executor has run.
func (e *Executor) Executed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.executed
}

// Stop halts background execution. The executor can be restarted with
// Start.
func (e *Executor) Stop() {
	e.mu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.stopCh)
	}
	e.mu.Unlock()
}

// Start launches the polling loop: the notification bit is tested
// locally (no CF access) at the given interval; when set, the executor
// claims one job — one "initiator" per member, so work spreads across
// the sysplex instead of one fast member draining the queue. Start
// after Stop resumes execution.
func (e *Executor) Start(poll time.Duration) {
	if poll <= 0 {
		poll = time.Millisecond
	}
	e.mu.Lock()
	if e.stopped || e.stopCh == nil {
		e.stopCh = make(chan struct{})
		e.stopped = false
	}
	stop := e.stopCh
	e.mu.Unlock()
	go func() {
		ticker := e.clock.NewTicker(poll)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				if e.vec.Test(0) {
					e.vec.Clear(0)
					// Background initiator: no caller context to honor;
					// Stop is the lifecycle control.
					e.runOne(context.Background())
					// Re-arm: monitoring sets the bit again immediately if
					// the list is still non-empty. The next tick retries if
					// the CF was down.
					_ = e.structure().Monitor(context.Background(), e.sys, inputList, 0)
				}
			}
		}
	}()
}

// DrainOnce pops and executes jobs until the input queue is empty.
// Returns the number executed. Exported so deterministic tests (and
// callers without background goroutines) can run the loop inline.
func (e *Executor) DrainOnce(ctx context.Context) int {
	n := 0
	for {
		if !e.runOne(ctx) {
			return n
		}
		n++
	}
}

// runOne atomically claims one job. The Pop is the serialization: two
// executors can never claim the same entry.
func (e *Executor) runOne(ctx context.Context) bool {
	ls := e.structure()
	entry, err := ls.Pop(ctx, e.sys, inputList, cf.Cond{})
	if err != nil {
		return false
	}
	var job Job
	if err := json.Unmarshal(entry.Data, &job); err != nil {
		return false
	}
	// Checkpoint the claim: the job sits on the active queue marked with
	// the running system, so peers can requeue it if we die.
	job.RanOn = e.sys
	raw, _ := json.Marshal(job)
	// Best-effort checkpoint: if the CF is down the claim simply isn't
	// durable, and a peer requeues the job after takeover.
	_ = ls.Write(ctx, e.sys, activeList, job.ID, "", raw, cf.FIFO, cf.Cond{})

	e.mu.Lock()
	h := e.handlers[job.Class]
	e.mu.Unlock()
	if h == nil {
		job.Error = ErrNoHandler.Error() + ": " + job.Class
	} else {
		out, err := h(job.Payload)
		if err != nil {
			job.Error = err.Error()
		} else {
			job.Output = out
		}
	}
	raw, _ = json.Marshal(job)
	// Best-effort completion record; a CF outage leaves the job on the
	// active queue for peer requeue, which re-runs it (at-least-once).
	// Detached: the job has run; a cancelled submitter must not leave
	// the completion record half-posted.
	dctx := vclock.Detach(ctx)
	_ = ls.Write(dctx, e.sys, activeList, job.ID, "", raw, cf.FIFO, cf.Cond{})
	_ = ls.Move(dctx, e.sys, job.ID, doneList, cf.FIFO, cf.Cond{})
	e.mu.Lock()
	e.executed++
	e.mu.Unlock()
	return true
}
