package jes

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/vclock"
)

type fixture struct {
	fac   *cf.Facility
	ls    cf.List
	q     *Queue
	execs map[string]*Executor
}

func newFixture(t *testing.T, systems ...string) *fixture {
	t.Helper()
	fac := cf.New("CF01", vclock.Real())
	ls, err := fac.AllocateListStructure("JES2CKPT", numLists, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(context.Background(), ls, "JES")
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{fac: fac, ls: ls, q: q, execs: map[string]*Executor{}}
	for _, s := range systems {
		e, err := NewExecutor(context.Background(), ls, s, vclock.Real())
		if err != nil {
			t.Fatal(err)
		}
		e.Register("ECHO", func(payload []byte) ([]byte, error) {
			return append([]byte("echo:"), payload...), nil
		})
		e.Register("FAIL", func(payload []byte) ([]byte, error) {
			return nil, errors.New("job blew up")
		})
		fx.execs[s] = e
	}
	return fx
}

func TestSubmitExecuteResult(t *testing.T) {
	fx := newFixture(t, "SYS1")
	id, err := fx.q.Submit(context.Background(), "ECHO", []byte("hello"), "USER1")
	if err != nil {
		t.Fatal(err)
	}
	if fx.q.Pending() != 1 {
		t.Fatalf("pending = %d", fx.q.Pending())
	}
	// The submit fired the transition signal (bit set, no interrupt).
	if !fx.execs["SYS1"].vec.Test(0) {
		t.Fatal("transition bit not set")
	}
	if n := fx.execs["SYS1"].DrainOnce(context.Background()); n != 1 {
		t.Fatalf("drained %d", n)
	}
	job, err := fx.q.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if string(job.Output) != "echo:hello" || job.RanOn != "SYS1" || job.SubmittedBy != "USER1" {
		t.Fatalf("job = %+v", job)
	}
	if fx.q.Pending() != 0 || fx.q.Active() != 0 || fx.q.Done() != 1 {
		t.Fatalf("queues = %d/%d/%d", fx.q.Pending(), fx.q.Active(), fx.q.Done())
	}
}

func TestJobErrorCaptured(t *testing.T) {
	fx := newFixture(t, "SYS1")
	id, _ := fx.q.Submit(context.Background(), "FAIL", nil, "U")
	fx.execs["SYS1"].DrainOnce(context.Background())
	job, err := fx.q.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if job.Error != "job blew up" {
		t.Fatalf("job = %+v", job)
	}
}

func TestNoHandler(t *testing.T) {
	fx := newFixture(t, "SYS1")
	id, _ := fx.q.Submit(context.Background(), "UNKNOWN", nil, "U")
	fx.execs["SYS1"].DrainOnce(context.Background())
	job, _ := fx.q.Result(context.Background(), id)
	if !strings.Contains(job.Error, "no handler") {
		t.Fatalf("job = %+v", job)
	}
}

func TestResultStates(t *testing.T) {
	fx := newFixture(t, "SYS1")
	if _, err := fx.q.Result(context.Background(), "JOB999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	id, _ := fx.q.Submit(context.Background(), "ECHO", nil, "U")
	if _, err := fx.q.Result(context.Background(), id); !errors.Is(err, ErrNotDone) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkDistributionAcrossSystems(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2", "SYS3")
	for _, e := range fx.execs {
		e.Start(500 * time.Microsecond)
		defer e.Stop()
	}
	const jobs = 60
	ids := make([]string, jobs)
	for i := range ids {
		id, err := fx.q.Submit(context.Background(), "ECHO", []byte(fmt.Sprintf("j%d", i)), "U")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	deadline := time.Now().Add(10 * time.Second)
	for fx.q.Done() < jobs && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fx.q.Done() != jobs {
		t.Fatalf("done = %d of %d", fx.q.Done(), jobs)
	}
	// Every job ran exactly once and results are retrievable.
	total := int64(0)
	for _, e := range fx.execs {
		total += e.Executed()
	}
	if total != jobs {
		t.Fatalf("total executed = %d (double execution or loss)", total)
	}
	for _, id := range ids {
		if _, err := fx.q.Result(context.Background(), id); err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
	}
}

func TestNoDoubleExecutionUnderContention(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2")
	const jobs = 40
	for i := 0; i < jobs; i++ {
		fx.q.Submit(context.Background(), "ECHO", nil, "U")
	}
	done := make(chan int, 2)
	for _, e := range fx.execs {
		e := e
		go func() { done <- e.DrainOnce(context.Background()) }()
	}
	n := <-done + <-done
	if n != jobs {
		t.Fatalf("executed %d, want %d", n, jobs)
	}
}

func TestRequeueOrphansAfterSystemFailure(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2")
	// Install a handler that "crashes" the system mid-job: it claims the
	// job (checkpointed on the active queue) and never completes.
	claimed := make(chan string, 1)
	fx.execs["SYS1"].Register("STUCK", func(payload []byte) ([]byte, error) {
		claimed <- string(payload)
		select {} // never returns: the system is dead
	})
	id, _ := fx.q.Submit(context.Background(), "STUCK", []byte("x"), "U")
	go fx.execs["SYS1"].DrainOnce(context.Background())
	<-claimed
	// Wait for the claim checkpoint to land on the active queue.
	deadline := time.Now().Add(2 * time.Second)
	for fx.q.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fx.q.Active() != 1 {
		t.Fatalf("active = %d", fx.q.Active())
	}
	// Peer performs checkpoint takeover.
	requeued, err := fx.q.RequeueOrphans(context.Background(), "SYS1")
	if err != nil || len(requeued) != 1 || requeued[0] != id {
		t.Fatalf("requeued = %v err=%v", requeued, err)
	}
	// SYS2 can now run it (with a working handler).
	fx.execs["SYS2"].Register("STUCK", func(payload []byte) ([]byte, error) {
		return []byte("recovered"), nil
	})
	fx.execs["SYS2"].DrainOnce(context.Background())
	job, err := fx.q.Result(context.Background(), id)
	if err != nil || string(job.Output) != "recovered" || job.RanOn != "SYS2" {
		t.Fatalf("job = %+v err=%v", job, err)
	}
}

func TestRequeueOrphansOnlyTouchesFailedSystem(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.q.Submit(context.Background(), "ECHO", nil, "U")
	fx.execs["SYS1"].DrainOnce(context.Background())
	requeued, err := fx.q.RequeueOrphans(context.Background(), "SYS9")
	if err != nil || len(requeued) != 0 {
		t.Fatalf("requeued = %v err=%v", requeued, err)
	}
}

func TestQueueValidation(t *testing.T) {
	fac := cf.New("CF", vclock.Real())
	small, _ := fac.AllocateListStructure("SMALL", 1, 0, 10)
	if _, err := NewQueue(context.Background(), small, "JES"); err == nil {
		t.Fatal("undersized structure accepted")
	}
}

func TestBackgroundNotificationFlow(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.execs["SYS1"].Start(200 * time.Microsecond)
	defer fx.execs["SYS1"].Stop()
	id, _ := fx.q.Submit(context.Background(), "ECHO", []byte("bg"), "U")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if job, err := fx.q.Result(context.Background(), id); err == nil {
			if string(job.Output) != "echo:bg" {
				t.Fatalf("job = %+v", job)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("job never completed via background notification")
}
