package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sysplex/internal/cds"
	"sysplex/internal/cf"
	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
	"sysplex/internal/xcf"
)

type harness struct {
	plex *Sysplexish
}

// Sysplexish bundles the substrate for lock manager tests.
type Sysplexish struct {
	plex  *xcf.Sysplex
	fac   *cf.Facility
	ls    cf.Lock
	mgrs  map[string]*Manager
	order []string
}

func newHarness(t *testing.T, systems ...string) *Sysplexish {
	t.Helper()
	farm := dasd.NewFarm(vclock.Real())
	if _, err := farm.AddVolume("V", 256, 1); err != nil {
		t.Fatal(err)
	}
	pri, _ := farm.Allocate("V", "CDS", 128)
	store, _ := cds.New("S", vclock.Real(), pri, nil, cds.Options{})
	plex := xcf.NewSysplex("PLEX1", vclock.Real(), store, farm, xcf.Options{})
	fac := cf.New("CF01", vclock.Real())
	ls, err := fac.AllocateLockStructure("IRLM", 512)
	if err != nil {
		t.Fatal(err)
	}
	h := &Sysplexish{plex: plex, fac: fac, ls: ls, mgrs: map[string]*Manager{}}
	for _, name := range systems {
		sys, err := plex.Join(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(context.Background(), sys, ls, vclock.Real())
		if err != nil {
			t.Fatal(err)
		}
		h.mgrs[name] = m
		h.order = append(h.order, name)
	}
	return h
}

func (h *Sysplexish) managers() []*Manager {
	out := make([]*Manager, 0, len(h.order))
	for _, n := range h.order {
		out = append(out, h.mgrs[n])
	}
	return out
}

const tmo = 2 * time.Second

func TestFastPathGrant(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1 := h.mgrs["SYS1"]
	if err := m1.Lock(context.Background(), "TX1", "DB.T1.R1", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	if m1.HeldMode("TX1", "DB.T1.R1") != Exclusive {
		t.Fatal("not held")
	}
	st := m1.Stats()
	if st.Locks != 1 || st.FastGrants != 1 || st.Negotiations != 0 {
		t.Fatalf("stats = %+v (fast path should be message-free)", st)
	}
	if err := m1.Unlock(context.Background(), "TX1", "DB.T1.R1"); err != nil {
		t.Fatal(err)
	}
	if m1.HeldMode("TX1", "DB.T1.R1") != 0 {
		t.Fatal("still held")
	}
}

func TestCrossSystemShareCompatible(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	if err := h.mgrs["SYS1"].Lock(context.Background(), "TX1", "R", Share, tmo); err != nil {
		t.Fatal(err)
	}
	if err := h.mgrs["SYS2"].Lock(context.Background(), "TX2", "R", Share, tmo); err != nil {
		t.Fatal(err)
	}
}

func TestCrossSystemRealContentionBlocksThenReleases(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "R", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m2.Lock(context.Background(), "TX2", "R", Exclusive, 5*time.Second) }()
	select {
	case err := <-got:
		t.Fatalf("lock granted while held: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := m1.Unlock(context.Background(), "TX1", "R"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
	st := m2.Stats()
	if st.RealContentions == 0 {
		t.Fatalf("stats = %+v, expected a real contention", st)
	}
}

func TestFalseContentionResolvedWithoutBlocking(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	// Find two distinct resources that hash to the same lock entry.
	base := "RES.A"
	target := h.ls.HashResource(base)
	var collide string
	for i := 0; ; i++ {
		c := fmt.Sprintf("RES.B%d", i)
		if c != base && h.ls.HashResource(c) == target {
			collide = c
			break
		}
	}
	if err := m1.Lock(context.Background(), "TX1", base, Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	// Different resource, same entry: must be granted after negotiation.
	if err := m2.Lock(context.Background(), "TX2", collide, Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.FalseContentions != 1 || st.Negotiations == 0 {
		t.Fatalf("stats = %+v, expected one false contention", st)
	}
	// Cleanliness: both unlock, then a third party can take either.
	m1.Unlock(context.Background(), "TX1", base)
	m2.Unlock(context.Background(), "TX2", collide)
	if err := m1.Lock(context.Background(), "TX9", collide, Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
}

func TestIntraSystemQueueing(t *testing.T) {
	h := newHarness(t, "SYS1")
	m := h.mgrs["SYS1"]
	if err := m.Lock(context.Background(), "TX1", "R", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(context.Background(), "TX2", "R", Share, 5*time.Second) }()
	select {
	case <-done:
		t.Fatal("granted while exclusively held locally")
	case <-time.After(30 * time.Millisecond):
	}
	m.Unlock(context.Background(), "TX1", "R")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Intra-system conflicts never touch the wire.
	if st := m.Stats(); st.Negotiations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUpgradeShareToExclusive(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "R", Share, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m1.Lock(context.Background(), "TX1", "R", Exclusive, tmo); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if m1.HeldMode("TX1", "R") != Exclusive {
		t.Fatal("mode not upgraded")
	}
	m1.Unlock(context.Background(), "TX1", "R")
	// The upgraded-away share interest must not linger at the CF.
	if err := m2.Lock(context.Background(), "TX2", "R", Exclusive, tmo); err != nil {
		t.Fatalf("entry not clean after upgrade+unlock: %v", err)
	}
}

func TestReGrantIsIdempotent(t *testing.T) {
	h := newHarness(t, "SYS1")
	m := h.mgrs["SYS1"]
	for i := 0; i < 3; i++ {
		if err := m.Lock(context.Background(), "TX1", "R", Exclusive, tmo); err != nil {
			t.Fatal(err)
		}
	}
	m.Unlock(context.Background(), "TX1", "R")
	if m.HeldMode("TX1", "R") != 0 {
		t.Fatal("still held after unlock")
	}
}

func TestTimeout(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	m1.Lock(context.Background(), "TX1", "R", Exclusive, tmo)
	err := m2.Lock(context.Background(), "TX2", "R", Exclusive, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if st := m2.Stats(); st.Timeouts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The timed-out waiter left no residue: unlock and relock works.
	m1.Unlock(context.Background(), "TX1", "R")
	if err := m2.Lock(context.Background(), "TX2", "R", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
}

func TestUnlockUnheldIsNoop(t *testing.T) {
	h := newHarness(t, "SYS1")
	if err := h.mgrs["SYS1"].Unlock(context.Background(), "TXX", "NEVER"); err != nil {
		t.Fatal(err)
	}
}

func TestCrossSystemDeadlockDetection(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "A", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m2.Lock(context.Background(), "TX2", "B", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- m1.Lock(context.Background(), "TX1", "B", Exclusive, 10*time.Second) }()
	go func() { r2 <- m2.Lock(context.Background(), "TX2", "A", Exclusive, 10*time.Second) }()
	// Let both reach their blocked state.
	det := NewDetector(h.managers)
	var victims []string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		victims = det.DetectOnce()
		if len(victims) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(victims) != 1 || victims[0] != "TX2" {
		t.Fatalf("victims = %v, want [TX2] (youngest)", victims)
	}
	if err := <-r2; !errors.Is(err, ErrDeadlock) {
		t.Fatalf("victim err = %v", err)
	}
	// Victim aborts its transaction, releasing B; TX1 proceeds.
	m2.Unlock(context.Background(), "TX2", "B")
	if err := <-r1; err != nil {
		t.Fatalf("survivor err = %v", err)
	}
}

func TestRetainedLocksProtectFailedSystemsResources(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "DB.P5", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	// SYS1 dies holding the lock.
	h.plex.PartitionNow("SYS1")
	h.fac.FailConnector("SYS1")

	// The resource stays protected: requests are refused, not granted.
	err := m2.Lock(context.Background(), "TX2", "DB.P5", Exclusive, 100*time.Millisecond)
	if !errors.Is(err, ErrRetained) {
		t.Fatalf("err = %v, want retained", err)
	}
	// Share on a share-retained? The record is exclusive: share refused too.
	if err := m2.Lock(context.Background(), "TX2", "DB.P5", Share, 100*time.Millisecond); !errors.Is(err, ErrRetained) {
		t.Fatalf("err = %v", err)
	}
	// Unrelated resources are unaffected.
	if err := m2.Lock(context.Background(), "TX2", "DB.P6", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}

	// Peer recovery: read retained resources, "recover" them, release.
	recs, err := m2.RetainedResources(context.Background(), "SYS1")
	if err != nil || len(recs) != 1 || recs[0].Resource != "DB.P5" {
		t.Fatalf("records = %v err=%v", recs, err)
	}
	if err := m2.ReleaseRetained(context.Background(), "SYS1", "DB.P5"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Lock(context.Background(), "TX2", "DB.P5", Exclusive, tmo); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestShutdownReleasesWaiters(t *testing.T) {
	h := newHarness(t, "SYS1")
	m := h.mgrs["SYS1"]
	m.Lock(context.Background(), "TX1", "R", Exclusive, tmo)
	done := make(chan error, 1)
	go func() { done <- m.Lock(context.Background(), "TX2", "R", Exclusive, 10*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	m.Shutdown()
	if err := <-done; !errors.Is(err, ErrShutdown) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Lock(context.Background(), "TX3", "S", Share, tmo); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown lock: %v", err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2", "SYS3")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i, m := range h.managers() {
		for g := 0; g < 4; g++ {
			owner := fmt.Sprintf("TX%d-%d", i, g)
			m := m
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 20; k++ {
					res := fmt.Sprintf("ROW.%d", k%7)
					mode := Share
					if k%3 == 0 {
						mode = Exclusive
					}
					if err := m.Lock(context.Background(), owner, res, mode, 10*time.Second); err != nil {
						errs <- err
						return
					}
					if err := m.Unlock(context.Background(), owner, res); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All entries must be clean afterwards: any lock grants instantly.
	for k := 0; k < 7; k++ {
		res := fmt.Sprintf("ROW.%d", k)
		if err := h.mgrs["SYS1"].Lock(context.Background(), "FINAL", res, Exclusive, tmo); err != nil {
			t.Fatalf("residue on %s: %v", res, err)
		}
		h.mgrs["SYS1"].Unlock(context.Background(), "FINAL", res)
	}
}

func TestWaitEdgesReflectBlocking(t *testing.T) {
	h := newHarness(t, "SYS1")
	m := h.mgrs["SYS1"]
	m.Lock(context.Background(), "TX1", "R", Exclusive, tmo)
	go m.Lock(context.Background(), "TX2", "R", Exclusive, 3*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		edges := m.WaitEdges()
		if len(edges) == 1 && edges[0].Waiter == "TX2" && edges[0].Holder == "TX1" {
			m.Unlock(context.Background(), "TX1", "R")
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("wait edge never appeared")
}

func TestMutualExclusionInvariant(t *testing.T) {
	// Hammer one resource from 3 systems; a shared counter guarded only
	// by the sysplex lock must never be corrupted.
	h := newHarness(t, "SYS1", "SYS2", "SYS3")
	var unsafeCounter int // intentionally unguarded by Go sync; the DLM is the guard
	var inside int32
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for i, m := range h.managers() {
		owner := fmt.Sprintf("TX%d", i)
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if err := m.Lock(context.Background(), owner, "COUNTER", Exclusive, 20*time.Second); err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
				if n := atomicAdd(&inside, 1); n != 1 {
					select {
					case fail <- "two owners inside critical section":
					default:
					}
				}
				unsafeCounter++
				atomicAdd(&inside, -1)
				if err := m.Unlock(context.Background(), owner, "COUNTER"); err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if unsafeCounter != 150 {
		t.Fatalf("counter = %d, want 150 (mutual exclusion violated)", unsafeCounter)
	}
}

func atomicAdd(p *int32, d int32) int32 {
	return atomic.AddInt32(p, d)
}

func TestRebindPreservesInterestAndRecords(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "A", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	if err := m1.Lock(context.Background(), "TX1", "B", Share, tmo); err != nil {
		t.Fatal(err)
	}
	// Rebuild the lock structure into a second facility.
	fac2 := cf.New("CF02", vclock.Real())
	newLS, err := fac2.AllocateLockStructure("IRLM", 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Rebind(context.Background(), newLS); err != nil {
		t.Fatal(err)
	}
	if err := m2.Rebind(context.Background(), newLS); err != nil {
		t.Fatal(err)
	}
	// Old facility can die now.
	h.fac.Fail()
	// Exclusive interest survived: SYS2 is still blocked.
	if err := m2.Lock(context.Background(), "TX2", "A", Exclusive, 60*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, exclusive interest lost", err)
	}
	// Share interest survived: a share grant works, exclusive is blocked.
	if err := m2.Lock(context.Background(), "TX2", "B", Share, tmo); err != nil {
		t.Fatal(err)
	}
	// Persistent records were re-recorded in the new structure.
	recs, err := newLS.Records(context.Background(), "SYS1")
	if err != nil || len(recs) != 1 || recs[0].Resource != "A" {
		t.Fatalf("records = %v err=%v", recs, err)
	}
	// Unlock flows work against the new structure.
	if err := m1.Unlock(context.Background(), "TX1", "A"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Lock(context.Background(), "TX2", "A", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
}

func TestRebindMigratesRetainedRecords(t *testing.T) {
	h := newHarness(t, "SYS1", "SYS2")
	m1, m2 := h.mgrs["SYS1"], h.mgrs["SYS2"]
	if err := m1.Lock(context.Background(), "TX1", "HELD", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
	// SYS1 fails; its record is retained in the old structure.
	h.plex.PartitionNow("SYS1")
	h.fac.FailConnector("SYS1")
	// Rebuild onto a new facility before recovery has run.
	fac2 := cf.New("CF02", vclock.Real())
	newLS, _ := fac2.AllocateLockStructure("IRLM", 512)
	if err := m2.Rebind(context.Background(), newLS); err != nil {
		t.Fatal(err)
	}
	// Retained protection still applies on the new structure.
	if err := m2.Lock(context.Background(), "TX2", "HELD", Exclusive, 60*time.Millisecond); !errors.Is(err, ErrRetained) {
		t.Fatalf("err = %v, retained protection lost across rebuild", err)
	}
	// Peer recovery against the new structure releases it.
	if err := m2.ReleaseRetained(context.Background(), "SYS1", "HELD"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Lock(context.Background(), "TX2", "HELD", Exclusive, tmo); err != nil {
		t.Fatal(err)
	}
}
