// Package lockmgr implements an IRLM-style distributed lock manager on
// top of the CF lock structure (§3.3.1). Each system runs one Manager;
// software locks hash onto CF lock table entries, and:
//
//   - the common case is a CPU-synchronous grant from the CF with no
//     inter-system communication;
//   - on entry contention the CF returns the identity of the holding
//     system(s), and the requester negotiates *selectively* with just
//     those systems over XCF signalling — false contention (distinct
//     resources hashing to one entry) is detected there and resolved
//     with a software-managed grant;
//   - exclusive locks are recorded as persistent lock records so a peer
//     can recover ("retain") the locks of a failed system: until
//     recovery completes, requests conflicting with a retained lock are
//     refused;
//   - cross-system deadlocks are found by a waits-for-graph detector.
package lockmgr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/metrics"
	"sysplex/internal/vclock"
	"sysplex/internal/xcf"
)

// Errors returned by Lock.
var (
	ErrTimeout  = errors.New("lockmgr: lock wait timed out")
	ErrDeadlock = errors.New("lockmgr: victim of deadlock resolution")
	ErrRetained = errors.New("lockmgr: resource protected by retained lock of failed system")
	ErrShutdown = errors.New("lockmgr: manager shut down")
)

// Mode re-exports the CF lock modes for callers.
type Mode = cf.LockMode

// Lock modes.
const (
	Share     = cf.Share
	Exclusive = cf.Exclusive
)

const service = "irlm"

// Stats summarize a manager's activity.
type Stats struct {
	Locks            int64 // granted lock requests
	FastGrants       int64 // granted synchronously by the CF, no messages
	Contentions      int64 // CF reported entry contention
	FalseContentions int64 // contention resolved as false (hash collision)
	RealContentions  int64 // contention on the same resource
	Negotiations     int64 // negotiation messages sent
	Deadlocks        int64 // local waiters aborted as deadlock victims
	Timeouts         int64
}

// Manager is one system's local lock manager.
type Manager struct {
	sysName string
	system  *xcf.System
	ls      cf.Lock
	clock   vclock.Clock
	reg     *metrics.Registry

	mu        sync.Mutex
	resources map[string]*resource
	pending   map[uint64]chan negotiateReply
	nextReq   uint64
	stats     Stats
	shutdown  bool
}

// resource is the local lock state for one resource name.
type resource struct {
	name    string
	holders map[string]cf.LockMode // owner -> mode (local holders)
	waiters []*waiter
	// remoteWaiters lists systems waiting for this manager to release
	// the resource; they are signalled on release.
	remoteWaiters map[string]bool
}

type waiter struct {
	owner  string
	mode   cf.LockMode
	wake   chan struct{}
	abort  chan struct{} // closed by deadlock detection
	blocks []string      // owner IDs this waiter currently waits behind
}

// New creates the lock manager for a system, connects it to the CF lock
// structure and binds its negotiation service.
func New(ctx context.Context, system *xcf.System, ls cf.Lock, clock vclock.Clock) (*Manager, error) {
	if clock == nil {
		clock = vclock.Real()
	}
	m := &Manager{
		sysName:   system.Name(),
		system:    system,
		ls:        ls,
		clock:     clock,
		reg:       metrics.NewRegistry(),
		resources: make(map[string]*resource),
		pending:   make(map[uint64]chan negotiateReply),
	}
	if err := ls.Connect(ctx, m.sysName); err != nil {
		return nil, err
	}
	system.BindService(service, m.handleMessage)
	return m, nil
}

// System returns the owning system name.
func (m *Manager) System() string { return m.sysName }

// structure returns the current lock structure under the lock so a
// concurrent Rebind is observed atomically.
func (m *Manager) structure() cf.Lock {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ls
}

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Metrics exposes the manager's latency instrumentation.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Shutdown marks the manager stopped; subsequent Lock calls fail and
// blocked waiters are released with ErrShutdown.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.shutdown = true
	var toWake []*waiter
	for _, r := range m.resources {
		toWake = append(toWake, r.waiters...)
		r.waiters = nil
	}
	m.mu.Unlock()
	for _, w := range toWake {
		close(w.abort)
	}
}

// Lock obtains resource in the given mode for owner (a transaction or
// unit-of-work ID unique within the sysplex). It blocks up to timeout.
func (m *Manager) Lock(ctx context.Context, owner, resourceName string, mode cf.LockMode, timeout time.Duration) error {
	start := m.clock.Now()
	deadline := start.Add(timeout)
	defer func() { m.reg.Histogram("lock.latency").Observe(m.clock.Since(start)) }()
	for {
		if err := vclock.Check(ctx, m.clock); err != nil {
			return err
		}
		st, err := m.tryLock(ctx, owner, resourceName, mode)
		if err != nil {
			return err
		}
		if st.granted {
			return nil
		}
		// Blocked: wait for a wake-up, abort, or timeout.
		remain := deadline.Sub(m.clock.Now())
		if remain <= 0 {
			m.removeWaiter(resourceName, st.w)
			m.bump(func(s *Stats) { s.Timeouts++ })
			return fmt.Errorf("%w: %s %v %s", ErrTimeout, owner, mode, resourceName)
		}
		select {
		case <-ctx.Done():
			m.removeWaiter(resourceName, st.w)
			return ctx.Err()
		case <-st.w.wake:
			// retry
		case <-st.w.abort:
			m.removeWaiter(resourceName, st.w)
			m.mu.Lock()
			down := m.shutdown
			m.mu.Unlock()
			if down {
				return ErrShutdown
			}
			m.bump(func(s *Stats) { s.Deadlocks++ })
			return fmt.Errorf("%w: %s on %s", ErrDeadlock, owner, resourceName)
		case <-m.clock.After(remain):
			m.removeWaiter(resourceName, st.w)
			m.bump(func(s *Stats) { s.Timeouts++ })
			return fmt.Errorf("%w: %s %v %s", ErrTimeout, owner, mode, resourceName)
		}
	}
}

type tryResult struct {
	granted bool
	w       *waiter
}

// tryLock makes one grant attempt; if blocked it installs and returns a
// waiter.
func (m *Manager) tryLock(ctx context.Context, owner, resourceName string, mode cf.LockMode) (tryResult, error) {
	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		return tryResult{}, ErrShutdown
	}
	r := m.resourceLocked(resourceName)
	// Intra-system conflict: queue locally, no CF traffic.
	if blockers := localConflicts(r, owner, mode); len(blockers) > 0 {
		w := m.installWaiterLocked(r, owner, mode, blockers)
		m.mu.Unlock()
		return tryResult{w: w}, nil
	}
	// Re-grant / upgrade by the same owner.
	hadShare := false
	if cur, ok := r.holders[owner]; ok {
		if cur == mode || cur == cf.Exclusive {
			m.mu.Unlock()
			m.bump(func(s *Stats) { s.Locks++; s.FastGrants++ })
			return tryResult{granted: true}, nil
		}
		hadShare = cur == cf.Share && mode == cf.Exclusive
	}
	m.mu.Unlock()

	// Retained-lock screen: resources exclusively recorded by a failed
	// system stay protected until peer recovery deletes the records.
	if holder, retained, err := m.retainedConflict(ctx, resourceName, mode); err != nil {
		return tryResult{}, err
	} else if retained {
		return tryResult{}, fmt.Errorf("%w: %s held by failed %s", ErrRetained, resourceName, holder)
	}

	ls := m.structure()
	entry := ls.HashResource(resourceName)
	res, err := ls.Obtain(ctx, entry, m.sysName, mode)
	if err != nil {
		return tryResult{}, err
	}
	if res.Granted {
		m.grantLocal(ctx, resourceName, owner, mode, entry)
		if hadShare {
			// Upgrade: drop the superseded share interest on the entry.
			// The exclusive interest already covers us if this fails.
			_ = ls.Release(ctx, entry, m.sysName, cf.Share)
		}
		m.bump(func(s *Stats) { s.Locks++; s.FastGrants++ })
		return tryResult{granted: true}, nil
	}

	// Entry contention: negotiate selectively with the holders the CF
	// identified.
	m.bump(func(s *Stats) { s.Contentions++ })
	conflictOwners, err := m.negotiate(res.Holders, resourceName, mode)
	if err != nil {
		return tryResult{}, err
	}
	if len(conflictOwners) == 0 {
		// False contention: distinct resources share the entry.
		m.bump(func(s *Stats) { s.FalseContentions++ })
		if err := ls.ForceObtain(ctx, entry, m.sysName, mode); err != nil {
			return tryResult{}, err
		}
		m.grantLocal(ctx, resourceName, owner, mode, entry)
		if hadShare {
			// As above: superseded by the exclusive interest.
			_ = ls.Release(ctx, entry, m.sysName, cf.Share)
		}
		m.bump(func(s *Stats) { s.Locks++ })
		return tryResult{granted: true}, nil
	}
	// Real contention: wait for the remote release signal.
	m.bump(func(s *Stats) { s.RealContentions++ })
	m.mu.Lock()
	r = m.resourceLocked(resourceName)
	w := m.installWaiterLocked(r, owner, mode, conflictOwners)
	m.mu.Unlock()
	return tryResult{w: w}, nil
}

// Unlock releases owner's hold on the resource.
func (m *Manager) Unlock(ctx context.Context, owner, resourceName string) error {
	m.mu.Lock()
	r := m.resources[resourceName]
	if r == nil {
		m.mu.Unlock()
		return nil
	}
	mode, ok := r.holders[owner]
	if !ok {
		m.mu.Unlock()
		return nil
	}
	delete(r.holders, owner)
	var toWake []*waiter
	for _, w := range r.waiters {
		toWake = append(toWake, w)
	}
	remote := make([]string, 0, len(r.remoteWaiters))
	for sysN := range r.remoteWaiters {
		remote = append(remote, sysN)
	}
	r.remoteWaiters = make(map[string]bool)
	empty := len(r.holders) == 0 && len(r.waiters) == 0
	if empty {
		delete(m.resources, resourceName)
	}
	m.mu.Unlock()

	ls := m.structure()
	entry := ls.HashResource(resourceName)
	if err := ls.Release(ctx, entry, m.sysName, mode); err != nil && !errors.Is(err, cf.ErrNotConnected) {
		return err
	}
	if mode == cf.Exclusive {
		// A stale record is harmless: recovery re-grants and overwrites.
		_ = ls.DeleteRecord(ctx, m.sysName, resourceName)
	}
	// Wake local waiters to retry.
	for _, w := range toWake {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	// Signal remote waiters.
	for _, sysN := range remote {
		m.send(sysN, wireMsg{Type: msgWakeup, Resource: resourceName})
	}
	return nil
}

// UnlockAll releases owner's hold on every named resource using one CF
// batch: the local grant tables are updated in a single pass, then all
// the entry releases — plus a record delete per exclusive — travel to
// the CF as one envelope (one link crossing on a transport CF) via
// cf.Lock.Batch, and finally local and remote waiters are woken. This
// is the commit-time bulk release: a transaction's release set touches
// independent entries, so per-key ordering inside the batch is enough.
// Resources owner does not hold are skipped, matching Unlock.
func (m *Manager) UnlockAll(ctx context.Context, owner string, resourceNames []string) error {
	if len(resourceNames) == 0 {
		return nil
	}
	type release struct {
		name string
		mode cf.LockMode
	}
	type remoteWake struct {
		sys, name string
	}
	var (
		rels    []release
		toWake  []*waiter
		remotes []remoteWake
	)
	m.mu.Lock()
	for _, resourceName := range resourceNames {
		r := m.resources[resourceName]
		if r == nil {
			continue
		}
		mode, ok := r.holders[owner]
		if !ok {
			continue
		}
		delete(r.holders, owner)
		toWake = append(toWake, r.waiters...)
		for sysN := range r.remoteWaiters {
			remotes = append(remotes, remoteWake{sysN, resourceName})
		}
		r.remoteWaiters = make(map[string]bool)
		if len(r.holders) == 0 && len(r.waiters) == 0 {
			delete(m.resources, resourceName)
		}
		rels = append(rels, release{resourceName, mode})
	}
	m.mu.Unlock()
	if len(rels) == 0 {
		return nil
	}

	ls := m.structure()
	cmds := make([]cf.BatchCmd, 0, 2*len(rels))
	for _, rl := range rels {
		cmds = append(cmds, cf.BatchLockRelease(ls.HashResource(rl.name), m.sysName, rl.mode))
		if rl.mode == cf.Exclusive {
			// A stale record is harmless: recovery re-grants and
			// overwrites — its per-sub error is discarded below, same
			// as Unlock discards DeleteRecord's.
			cmds = append(cmds, cf.BatchLockDelRecord(m.sysName, rl.name))
		}
	}
	var firstErr error
	for start := 0; start < len(cmds); start += cf.MaxBatchOps {
		chunk := cmds[start:min(start+cf.MaxBatchOps, len(cmds))]
		errs, err := ls.Batch(ctx, chunk)
		if err != nil {
			if firstErr == nil && !errors.Is(err, cf.ErrNotConnected) {
				firstErr = err
			}
			continue
		}
		for i, serr := range errs {
			if serr == nil || errors.Is(serr, cf.ErrNotConnected) {
				continue
			}
			if chunk[i].Op == cf.BatchOpLockDelRecord {
				continue
			}
			if firstErr == nil {
				firstErr = serr
			}
		}
	}
	// Wake waiters even if the CF refused something: the local grants
	// are gone and the waiters must re-drive.
	for _, w := range toWake {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	for _, rw := range remotes {
		m.send(rw.sys, wireMsg{Type: msgWakeup, Resource: rw.name})
	}
	return firstErr
}

// HeldMode reports owner's current mode on a resource (0 if none).
func (m *Manager) HeldMode(owner, resourceName string) cf.LockMode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.resources[resourceName]; r != nil {
		return r.holders[owner]
	}
	return 0
}

// grantLocal records a granted lock and its persistent record.
func (m *Manager) grantLocal(ctx context.Context, resourceName, owner string, mode cf.LockMode, entry int) {
	m.mu.Lock()
	r := m.resourceLocked(resourceName)
	r.holders[owner] = mode
	m.mu.Unlock()
	if mode == cf.Exclusive {
		// Persistent record: peers recover this if we fail (§3.3.1). If
		// the CF is down the grant stands, just without crash coverage.
		_ = m.structure().SetRecord(ctx, m.sysName, resourceName, mode)
	}
}

func (m *Manager) resourceLocked(name string) *resource {
	r := m.resources[name]
	if r == nil {
		r = &resource{
			name:          name,
			holders:       make(map[string]cf.LockMode),
			remoteWaiters: make(map[string]bool),
		}
		m.resources[name] = r
	}
	return r
}

func (m *Manager) installWaiterLocked(r *resource, owner string, mode cf.LockMode, blocks []string) *waiter {
	w := &waiter{
		owner:  owner,
		mode:   mode,
		wake:   make(chan struct{}, 1),
		abort:  make(chan struct{}),
		blocks: blocks,
	}
	r.waiters = append(r.waiters, w)
	return w
}

func (m *Manager) removeWaiter(resourceName string, w *waiter) {
	if w == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.resources[resourceName]
	if r == nil {
		return
	}
	for i, x := range r.waiters {
		if x == w {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			break
		}
	}
	if len(r.holders) == 0 && len(r.waiters) == 0 {
		delete(m.resources, resourceName)
	}
}

// localConflicts returns local owners whose holds are incompatible.
func localConflicts(r *resource, owner string, mode cf.LockMode) []string {
	var out []string
	for o, held := range r.holders {
		if o == owner {
			continue
		}
		if mode == cf.Exclusive || held == cf.Exclusive {
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}

// retainedConflict checks CF persistent records of failed connectors.
func (m *Manager) retainedConflict(ctx context.Context, resourceName string, mode cf.LockMode) (string, bool, error) {
	ls := m.structure()
	for _, conn := range ls.RetainedConnectors() {
		recs, err := ls.Records(ctx, conn)
		if err != nil {
			return "", false, err
		}
		for _, rec := range recs {
			if rec.Resource != resourceName {
				continue
			}
			if mode == cf.Exclusive || rec.Mode == cf.Exclusive {
				return conn, true, nil
			}
		}
	}
	return "", false, nil
}

// Rebind moves the manager onto a new lock structure (CF structure
// rebuild, §3.3 "multiple CFs can be connected for availability"): the
// connector re-registers, re-populates its held interest from the local
// lock tables, re-records persistent locks, and migrates any retained
// records of failed systems it can still read from the old structure.
// All managers of a structure must rebind before normal operation
// resumes; the caller orchestrates that (see the sysplex façade).
func (m *Manager) Rebind(ctx context.Context, newLS cf.Lock) error {
	if err := newLS.Connect(ctx, m.sysName); err != nil {
		return err
	}
	m.mu.Lock()
	oldLS := m.ls
	type hold struct {
		resource string
		mode     cf.LockMode
	}
	var holds []hold
	for name, r := range m.resources {
		// One unit of CF interest exists per local holder.
		for _, mode := range r.holders {
			holds = append(holds, hold{resource: name, mode: mode})
		}
	}
	m.ls = newLS
	m.mu.Unlock()

	for _, h := range holds {
		entry := newLS.HashResource(h.resource)
		res, err := newLS.Obtain(ctx, entry, m.sysName, h.mode)
		if err != nil {
			return err
		}
		if !res.Granted {
			// Any entry-level conflict during a rebuild of already
			// compatible holders is false contention by construction.
			if err := newLS.ForceObtain(ctx, entry, m.sysName, h.mode); err != nil {
				return err
			}
		}
		if h.mode == cf.Exclusive {
			if err := newLS.SetRecord(ctx, m.sysName, h.resource, h.mode); err != nil {
				return err
			}
		}
	}
	// Carry forward retained records of failed systems, if the old
	// structure is still readable.
	if oldLS != nil {
		for _, conn := range oldLS.RetainedConnectors() {
			if recs, err := oldLS.Records(ctx, conn); err == nil {
				newLS.AdoptRetained(conn, recs)
			}
		}
	}
	return nil
}

// RetainedResources lists resources protected on behalf of a failed
// system (recovery reads this to drive redo/undo).
func (m *Manager) RetainedResources(ctx context.Context, failedSys string) ([]cf.LockRecord, error) {
	return m.structure().Records(ctx, failedSys)
}

// ReleaseRetained deletes the retained record for one resource of a
// failed system once its recovery is complete.
func (m *Manager) ReleaseRetained(ctx context.Context, failedSys, resourceName string) error {
	return m.structure().DeleteRecord(ctx, failedSys, resourceName)
}

func (m *Manager) bump(fn func(*Stats)) {
	m.mu.Lock()
	fn(&m.stats)
	m.mu.Unlock()
}

// --- negotiation protocol over XCF signalling ---

type msgType string

const (
	msgNegotiate msgType = "negotiate"
	msgReply     msgType = "reply"
	msgWakeup    msgType = "wakeup"
)

type wireMsg struct {
	Type     msgType  `json:"type"`
	Req      uint64   `json:"req,omitempty"`
	Resource string   `json:"resource,omitempty"`
	Mode     int      `json:"mode,omitempty"`
	Conflict bool     `json:"conflict,omitempty"`
	Owners   []string `json:"owners,omitempty"`
}

type negotiateReply struct {
	conflict bool
	owners   []string
}

// negotiate asks each holding system whether a real conflict exists on
// the actual resource. It returns the owner IDs that truly conflict
// (empty means false contention).
func (m *Manager) negotiate(holders []string, resourceName string, mode cf.LockMode) ([]string, error) {
	var conflictOwners []string
	for _, holderSys := range holders {
		if holderSys == m.sysName {
			continue
		}
		m.bump(func(s *Stats) { s.Negotiations++ })
		reply, err := m.ask(holderSys, resourceName, mode)
		if err != nil {
			// Holder died mid-negotiation; its interest will be cleaned
			// up by XCF/CF failure handling. Treat as no conflict.
			continue
		}
		if reply.conflict {
			conflictOwners = append(conflictOwners, reply.owners...)
		}
	}
	sort.Strings(conflictOwners)
	return conflictOwners, nil
}

func (m *Manager) ask(holderSys, resourceName string, mode cf.LockMode) (negotiateReply, error) {
	m.mu.Lock()
	m.nextReq++
	req := m.nextReq
	ch := make(chan negotiateReply, 1)
	m.pending[req] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pending, req)
		m.mu.Unlock()
	}()
	err := m.send(holderSys, wireMsg{Type: msgNegotiate, Req: req, Resource: resourceName, Mode: int(mode)})
	if err != nil {
		return negotiateReply{}, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-m.clock.After(2 * time.Second):
		return negotiateReply{}, fmt.Errorf("lockmgr: negotiation with %s timed out", holderSys)
	}
}

func (m *Manager) send(toSys string, msg wireMsg) error {
	raw, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	return m.system.Send(toSys, service, raw)
}

// handleMessage dispatches inbound IRLM protocol messages.
func (m *Manager) handleMessage(from string, payload []byte) {
	var msg wireMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return
	}
	switch msg.Type {
	case msgNegotiate:
		conflict, owners := m.checkConflict(from, msg.Resource, cf.LockMode(msg.Mode))
		m.send(from, wireMsg{Type: msgReply, Req: msg.Req, Conflict: conflict, Owners: owners})
	case msgReply:
		m.mu.Lock()
		ch := m.pending[msg.Req]
		m.mu.Unlock()
		if ch != nil {
			ch <- negotiateReply{conflict: msg.Conflict, owners: msg.Owners}
		}
	case msgWakeup:
		m.mu.Lock()
		r := m.resources[msg.Resource]
		var toWake []*waiter
		if r != nil {
			toWake = append(toWake, r.waiters...)
		}
		m.mu.Unlock()
		for _, w := range toWake {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
}

// checkConflict answers a negotiation request: does this system hold
// the named resource in a mode incompatible with the request? If yes,
// the requester's system is registered for a release signal.
func (m *Manager) checkConflict(fromSys, resourceName string, mode cf.LockMode) (bool, []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.resources[resourceName]
	if r == nil {
		return false, nil
	}
	var owners []string
	for o, held := range r.holders {
		if mode == cf.Exclusive || held == cf.Exclusive {
			owners = append(owners, o)
		}
	}
	if len(owners) == 0 {
		return false, nil
	}
	r.remoteWaiters[fromSys] = true
	sort.Strings(owners)
	return true, owners
}

// --- deadlock detection ---

// Edge is one waits-for relation between lock owners.
type Edge struct {
	Waiter string
	Holder string
}

// WaitEdges snapshots this manager's local waits-for edges.
func (m *Manager) WaitEdges() []Edge {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Edge
	for _, r := range m.resources {
		for _, w := range r.waiters {
			// Edges recorded at block time plus current local holders.
			seen := map[string]bool{}
			for _, h := range w.blocks {
				if h != w.owner && !seen[h] {
					out = append(out, Edge{Waiter: w.owner, Holder: h})
					seen[h] = true
				}
			}
			for o := range r.holders {
				if o != w.owner && !seen[o] {
					out = append(out, Edge{Waiter: w.owner, Holder: o})
					seen[o] = true
				}
			}
		}
	}
	return out
}

// abortOwnerWaiters aborts every waiter belonging to owner.
func (m *Manager) abortOwnerWaiters(owner string) int {
	m.mu.Lock()
	var victims []*waiter
	for _, r := range m.resources {
		for _, w := range r.waiters {
			if w.owner == owner {
				victims = append(victims, w)
			}
		}
	}
	m.mu.Unlock()
	for _, w := range victims {
		select {
		case <-w.abort:
		default:
			close(w.abort)
		}
	}
	return len(victims)
}

// Detector periodically gathers waits-for edges from all managers and
// aborts one victim per cycle (the lexicographically greatest owner,
// approximating "youngest" for sequence-named transactions).
type Detector struct {
	managers func() []*Manager
}

// NewDetector builds a detector over a dynamic manager set.
func NewDetector(managers func() []*Manager) *Detector {
	return &Detector{managers: managers}
}

// DetectOnce runs one global detection pass and returns the victims
// aborted.
func (d *Detector) DetectOnce() []string {
	mgrs := d.managers()
	adj := map[string]map[string]bool{}
	for _, m := range mgrs {
		for _, e := range m.WaitEdges() {
			if adj[e.Waiter] == nil {
				adj[e.Waiter] = map[string]bool{}
			}
			adj[e.Waiter][e.Holder] = true
		}
	}
	var victims []string
	for {
		cycle := findCycle(adj)
		if len(cycle) == 0 {
			break
		}
		victim := cycle[0]
		for _, o := range cycle {
			if o > victim {
				victim = o
			}
		}
		victims = append(victims, victim)
		delete(adj, victim)
		for _, m := range mgrs {
			m.abortOwnerWaiters(victim)
		}
	}
	return victims
}

// findCycle returns the owners on one cycle in the waits-for graph
// (empty if acyclic).
func findCycle(adj map[string]map[string]bool) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	parent := map[string]string{}
	var cycle []string
	var dfs func(u string) bool
	dfs = func(u string) bool {
		color[u] = gray
		next := make([]string, 0, len(adj[u]))
		for v := range adj[u] {
			next = append(next, v)
		}
		sort.Strings(next)
		for _, v := range next {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a cycle v -> ... -> u -> v.
				cycle = append(cycle, v)
				for x := u; x != v && x != ""; x = parent[x] {
					cycle = append(cycle, x)
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	nodes := make([]string, 0, len(adj))
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	for _, u := range nodes {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}
