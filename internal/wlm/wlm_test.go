package wlm

import (
	"errors"
	"math"
	"testing"
	"time"

	"sysplex/internal/vclock"
	"sysplex/internal/xcf"
)

var t0 = time.Date(1996, 4, 15, 0, 0, 0, 0, time.UTC)

type fixture struct {
	plex  *xcf.Sysplex
	clock *vclock.Fake
	mgrs  map[string]*Manager
}

func newFixture(t *testing.T, caps map[string]float64) *fixture {
	t.Helper()
	clock := vclock.NewFake(t0)
	plex := xcf.NewSysplex("PLEX1", clock, nil, nil, xcf.Options{})
	fx := &fixture{plex: plex, clock: clock, mgrs: map[string]*Manager{}}
	policy := Policy{Name: "STD", Goals: []Goal{
		{Class: "ONLINE", Importance: 1, AvgResponse: 100 * time.Millisecond},
		{Class: "BATCH", Importance: 3, Velocity: 0.3},
	}}
	names := make([]string, 0, len(caps))
	for n := range caps {
		names = append(names, n)
	}
	// Deterministic join order.
	for _, n := range []string{"SYS1", "SYS2", "SYS3", "SYS4"} {
		cap, ok := caps[n]
		if !ok {
			continue
		}
		sys, err := plex.Join(n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(sys, cap, policy, clock)
		if err != nil {
			t.Fatal(err)
		}
		fx.mgrs[n] = m
	}
	_ = names
	return fx
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestUtilizationFromReportedService(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	// 10 seconds pass; 500 MIPS-seconds consumed on a 100 MIPS box = 50%.
	fx.clock.Advance(10 * time.Second)
	m.ReportWork("ONLINE", 50*time.Millisecond, 500)
	m.EndInterval()
	if u := m.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
	// Utilization is clamped to [0,1].
	fx.clock.Advance(time.Second)
	m.ReportWork("ONLINE", time.Millisecond, 1e9)
	m.EndInterval()
	if u := m.Utilization(); u != 1 {
		t.Fatalf("utilization = %g, want clamped 1", u)
	}
}

func TestPerformanceIndex(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	fx.clock.Advance(time.Second)
	// Mean response 200ms vs 100ms goal → PI = 2 (missing goal).
	m.ReportWork("ONLINE", 150*time.Millisecond, 1)
	m.ReportWork("ONLINE", 250*time.Millisecond, 1)
	m.EndInterval()
	cp, ok := m.ClassPerformance("ONLINE")
	if !ok || cp.Completions != 2 {
		t.Fatalf("perf = %+v ok=%v", cp, ok)
	}
	if math.Abs(cp.PerformanceIndex-2.0) > 1e-9 {
		t.Fatalf("PI = %g, want 2", cp.PerformanceIndex)
	}
	if cp.MeanResponse != 200*time.Millisecond {
		t.Fatalf("mean = %v", cp.MeanResponse)
	}
	// Class without completions: absent.
	if _, ok := m.ClassPerformance("BATCH"); ok {
		t.Fatal("BATCH should have no stats")
	}
}

func TestExchangePropagatesState(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100, "SYS2": 200})
	m1, m2 := fx.mgrs["SYS1"], fx.mgrs["SYS2"]
	fx.clock.Advance(time.Second)
	m1.ReportWork("ONLINE", time.Millisecond, 90) // SYS1 at 90%
	m1.ExchangeOnce()
	m2.ExchangeOnce()
	waitFor(t, "peer state", func() bool {
		for _, p := range m2.Peers() {
			if p.System == "SYS1" && p.Utilization > 0.8 {
				return true
			}
		}
		return false
	})
	peers := m2.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
}

func TestSelectSystemPrefersIdle(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100, "SYS2": 100})
	m1, m2 := fx.mgrs["SYS1"], fx.mgrs["SYS2"]
	fx.clock.Advance(time.Second)
	m1.ReportWork("ONLINE", time.Millisecond, 95) // SYS1 busy
	m1.ExchangeOnce()
	m2.ExchangeOnce()
	waitFor(t, "peer state", func() bool {
		if len(m1.Peers()) != 2 {
			return false
		}
		for _, p := range m1.Peers() {
			if p.System == "SYS1" && p.Utilization > 0.9 {
				return true
			}
		}
		return false
	})
	// From both managers' viewpoints, SYS2 is the recommendation.
	for i := 0; i < 5; i++ {
		got, err := m1.SelectSystem()
		if err != nil || got != "SYS2" {
			t.Fatalf("SelectSystem = %q err=%v", got, err)
		}
	}
}

func TestSelectSystemRotatesAmongEquals(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100, "SYS2": 100, "SYS3": 100})
	m := fx.mgrs["SYS1"]
	for _, mgr := range fx.mgrs {
		mgr.ExchangeOnce()
	}
	waitFor(t, "3 peers", func() bool { return len(m.Peers()) == 3 })
	seen := map[string]int{}
	for i := 0; i < 30; i++ {
		s, err := m.SelectSystem()
		if err != nil {
			t.Fatal(err)
		}
		seen[s]++
	}
	if len(seen) != 3 {
		t.Fatalf("distribution = %v, want all three systems used", seen)
	}
}

func TestFailedPeerPruned(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100, "SYS2": 100})
	m1 := fx.mgrs["SYS1"]
	for _, mgr := range fx.mgrs {
		mgr.ExchangeOnce()
	}
	waitFor(t, "2 peers", func() bool { return len(m1.Peers()) == 2 })
	fx.plex.PartitionNow("SYS2")
	waitFor(t, "peer pruned", func() bool { return len(m1.Peers()) == 1 })
	s, err := m1.SelectSystem()
	if err != nil || s != "SYS1" {
		t.Fatalf("SelectSystem = %q err=%v", s, err)
	}
}

func TestRouteWeights(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100, "SYS2": 300})
	m1, m2 := fx.mgrs["SYS1"], fx.mgrs["SYS2"]
	m1.ExchangeOnce()
	m2.ExchangeOnce()
	waitFor(t, "peers", func() bool { return len(m1.Peers()) == 2 })
	w := m1.RouteWeights()
	if math.Abs(w["SYS1"]-0.25) > 1e-9 || math.Abs(w["SYS2"]-0.75) > 1e-9 {
		t.Fatalf("weights = %v", w)
	}
	// Saturated sysplex: uniform weights.
	m1.SetUtilization(1)
	m2.SetUtilization(1)
	m1.ExchangeOnce()
	m2.ExchangeOnce()
	// ExchangeOnce recomputes utilization from the (empty) interval, so
	// force the saturated view directly.
	m1.mu.Lock()
	for n, p := range m1.peers {
		p.Utilization = 1
		m1.peers[n] = p
	}
	m1.mu.Unlock()
	w = m1.RouteWeights()
	if math.Abs(w["SYS1"]-0.5) > 1e-9 || math.Abs(w["SYS2"]-0.5) > 1e-9 {
		t.Fatalf("saturated weights = %v", w)
	}
}

func TestPolicyAccessorsAndValidation(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	if m.Policy().Name != "STD" {
		t.Fatal("policy name")
	}
	m.SetPolicy(Policy{Name: "NEW"})
	if m.Policy().Name != "NEW" {
		t.Fatal("policy not replaced")
	}
	if m.System() != "SYS1" || m.Capacity() != 100 {
		t.Fatal("accessors")
	}
	sys, _ := fx.plex.Join("SYSX")
	if _, err := New(sys, 0, Policy{}, fx.clock); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSelectSystemSelfOnly(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	s, err := m.SelectSystem()
	if err != nil || s != "SYS1" {
		t.Fatalf("s=%q err=%v", s, err)
	}
	if errors.Is(err, ErrNoSystems) {
		t.Fatal("unexpected ErrNoSystems")
	}
}

func TestVelocityGoalPerformanceIndex(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	fx.clock.Advance(time.Second)
	// BATCH has a velocity goal of 0.3. A job with 100 MIPS-sec of
	// service on a 100 MIPS box used 1s of CPU; with a 4s response its
	// velocity is 0.25 → PI = 0.3/0.25 = 1.2 (missing the goal).
	m.ReportWork("BATCH", 4*time.Second, 100)
	m.EndInterval()
	cp, ok := m.ClassPerformance("BATCH")
	if !ok {
		t.Fatal("no BATCH stats")
	}
	if math.Abs(cp.Velocity-0.25) > 1e-9 {
		t.Fatalf("velocity = %g, want 0.25", cp.Velocity)
	}
	if math.Abs(cp.PerformanceIndex-1.2) > 1e-9 {
		t.Fatalf("PI = %g, want 1.2", cp.PerformanceIndex)
	}
}

func TestVelocityClampedToOne(t *testing.T) {
	fx := newFixture(t, map[string]float64{"SYS1": 100})
	m := fx.mgrs["SYS1"]
	fx.clock.Advance(time.Second)
	// More service than response time (over-reported): clamp.
	m.ReportWork("BATCH", 100*time.Millisecond, 1000)
	m.EndInterval()
	cp, _ := m.ClassPerformance("BATCH")
	if cp.Velocity != 1 {
		t.Fatalf("velocity = %g, want clamped 1", cp.Velocity)
	}
}
