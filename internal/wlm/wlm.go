// Package wlm implements a Workload Manager in the spirit of the MVS
// WLM component (§2.1, §5.1): policy-driven, goal-oriented resource
// management plus the sysplex-wide state exchange that underpins
// dynamic workload balancing. Each system runs a Manager; managers
// periodically exchange capacity and utilization over an XCF group, and
// routing services (VTAM generic resources, CICS dynamic routing) ask
// any manager for a target-system recommendation.
package wlm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/vclock"
	"sysplex/internal/xcf"
)

// GroupName is the XCF group WLM instances join.
const GroupName = "SYSWLM"

// ErrNoSystems is returned when no candidate system is available.
var ErrNoSystems = errors.New("wlm: no active systems to route to")

// Goal is a service-class goal. Exactly one of AvgResponse or Velocity
// should be set.
type Goal struct {
	Class       string
	Importance  int           // 1 (highest) .. 5
	AvgResponse time.Duration // average response time goal
	Velocity    float64       // execution velocity goal in (0,1]
}

// Policy is the sysplex-wide service definition.
type Policy struct {
	Name  string
	Goals []Goal
}

// goal returns the goal for a class (zero Goal if undefined).
func (p Policy) goal(class string) (Goal, bool) {
	for _, g := range p.Goals {
		if g.Class == class {
			return g, true
		}
	}
	return Goal{}, false
}

// PeerState is one system's view of another's load.
type PeerState struct {
	System       string  `json:"system"`
	CapacityMIPS float64 `json:"capacity"`
	Utilization  float64 `json:"utilization"`
	Sequence     int64   `json:"seq"`
}

// ClassPerf summarizes a service class over the last completed interval.
type ClassPerf struct {
	Class        string
	Completions  int64
	MeanResponse time.Duration
	// Velocity is the execution-velocity sample: the fraction of
	// response time spent using the processor (service/response).
	Velocity float64
	// PerformanceIndex is actual/goal for response goals, or
	// goal/actual for velocity goals; in both cases >1 means the class
	// is missing its goal.
	PerformanceIndex float64
}

// Manager is one system's WLM instance.
type Manager struct {
	sys    string
	clock  vclock.Clock
	policy Policy
	member *xcf.Member

	mu         sync.Mutex
	capacity   float64 // MIPS
	inInterval struct {
		service   float64 // MIPS-seconds consumed
		byClass   map[string]*classAccum
		startedAt time.Time
	}
	lastUtil  float64
	lastPerf  map[string]ClassPerf
	peers     map[string]PeerState
	seq       int64
	rrCounter int
}

type classAccum struct {
	completions int64
	totalResp   time.Duration
	totalSvcSec float64 // processor seconds (MIPS-sec / capacity)
}

// New creates the WLM instance for a system with the given processor
// capacity (MIPS) and joins the WLM exchange group.
func New(system *xcf.System, capacityMIPS float64, policy Policy, clock vclock.Clock) (*Manager, error) {
	if clock == nil {
		clock = vclock.Real()
	}
	if capacityMIPS <= 0 {
		return nil, fmt.Errorf("wlm: capacity must be positive")
	}
	m := &Manager{
		sys:      system.Name(),
		clock:    clock,
		policy:   policy,
		capacity: capacityMIPS,
		peers:    make(map[string]PeerState),
		lastPerf: make(map[string]ClassPerf),
	}
	m.resetIntervalLocked()
	member, err := system.JoinGroup(GroupName, system.Name(), xcf.GroupCallbacks{
		OnMessage: m.onPeerState,
		OnEvent:   m.onEvent,
	})
	if err != nil {
		return nil, err
	}
	m.member = member
	return m, nil
}

// System returns the owning system name.
func (m *Manager) System() string { return m.sys }

// Capacity returns the configured MIPS capacity.
func (m *Manager) Capacity() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacity
}

// Policy returns the active service definition.
func (m *Manager) Policy() Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// SetPolicy installs a new service definition (policy activation).
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	m.policy = p
	m.mu.Unlock()
}

// ReportWork records a completed work unit of a service class: its
// response time and the processor service it consumed (MIPS-seconds).
func (m *Manager) ReportWork(class string, response time.Duration, serviceMIPSsec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	acc := m.inInterval.byClass[class]
	if acc == nil {
		acc = &classAccum{}
		m.inInterval.byClass[class] = acc
	}
	acc.completions++
	acc.totalResp += response
	if serviceMIPSsec > 0 {
		m.inInterval.service += serviceMIPSsec
		if m.capacity > 0 {
			acc.totalSvcSec += serviceMIPSsec / m.capacity
		}
	}
}

// EndInterval closes the current measurement interval: utilization and
// per-class performance indexes are computed and become the values
// reported to peers until the next interval ends.
func (m *Manager) EndInterval() {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := m.clock.Now().Sub(m.inInterval.startedAt).Seconds()
	if elapsed > 0 {
		util := m.inInterval.service / (m.capacity * elapsed)
		if util > 1 {
			util = 1
		}
		if util < 0 {
			util = 0
		}
		m.lastUtil = util
	}
	perf := make(map[string]ClassPerf, len(m.inInterval.byClass))
	for class, acc := range m.inInterval.byClass {
		cp := ClassPerf{Class: class, Completions: acc.completions}
		if acc.completions > 0 {
			cp.MeanResponse = acc.totalResp / time.Duration(acc.completions)
		}
		if acc.totalResp > 0 {
			cp.Velocity = acc.totalSvcSec / acc.totalResp.Seconds()
			if cp.Velocity > 1 {
				cp.Velocity = 1
			}
		}
		if g, ok := m.policy.goal(class); ok {
			switch {
			case g.AvgResponse > 0 && cp.MeanResponse > 0:
				cp.PerformanceIndex = float64(cp.MeanResponse) / float64(g.AvgResponse)
			case g.Velocity > 0 && cp.Velocity > 0:
				cp.PerformanceIndex = g.Velocity / cp.Velocity
			}
		}
		perf[class] = cp
	}
	m.lastPerf = perf
	m.resetIntervalLocked()
}

func (m *Manager) resetIntervalLocked() {
	m.inInterval.service = 0
	m.inInterval.byClass = make(map[string]*classAccum)
	m.inInterval.startedAt = m.clock.Now()
}

// Utilization returns the last completed interval's CPU utilization.
func (m *Manager) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastUtil
}

// SetUtilization overrides the reported utilization (tests, and the
// DES-driven experiments that compute utilization externally).
func (m *Manager) SetUtilization(u float64) {
	m.mu.Lock()
	m.lastUtil = u
	m.mu.Unlock()
}

// ClassPerformance returns the last interval's stats for a class.
func (m *Manager) ClassPerformance(class string) (ClassPerf, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.lastPerf[class]
	return cp, ok
}

// ExchangeOnce ends the local interval and broadcasts this system's
// state to all WLM peers. Production drives this from a ticker.
func (m *Manager) ExchangeOnce() {
	m.EndInterval()
	m.mu.Lock()
	m.seq++
	st := PeerState{System: m.sys, CapacityMIPS: m.capacity, Utilization: m.lastUtil, Sequence: m.seq}
	m.peers[m.sys] = st
	m.mu.Unlock()
	raw, err := json.Marshal(st)
	if err != nil {
		return
	}
	m.member.Broadcast(raw)
}

// IngestPeer injects a peer state directly, bypassing the XCF exchange.
// Used by tests and by DES-driven experiments where utilization comes
// from the simulator rather than live measurement.
func (m *Manager) IngestPeer(st PeerState) {
	m.mu.Lock()
	m.peers[st.System] = st
	m.mu.Unlock()
}

// onPeerState ingests a peer broadcast.
func (m *Manager) onPeerState(from xcf.MemberID, payload []byte) {
	var st PeerState
	if err := json.Unmarshal(payload, &st); err != nil {
		return
	}
	m.mu.Lock()
	if cur, ok := m.peers[st.System]; !ok || st.Sequence >= cur.Sequence {
		m.peers[st.System] = st
	}
	m.mu.Unlock()
}

// onEvent prunes failed or departed peers.
func (m *Manager) onEvent(ev xcf.Event) {
	if ev.Kind == xcf.MemberFailed || ev.Kind == xcf.MemberLeft {
		m.mu.Lock()
		delete(m.peers, ev.Member.System)
		m.mu.Unlock()
	}
}

// Peers returns the known sysplex-wide state, including this system.
func (m *Manager) Peers() []PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerState, 0, len(m.peers)+1)
	for _, p := range m.peers {
		out = append(out, p)
	}
	if _, ok := m.peers[m.sys]; !ok {
		out = append(out, PeerState{System: m.sys, CapacityMIPS: m.capacity, Utilization: m.lastUtil})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].System < out[j].System })
	return out
}

// AvailableCapacity returns each system's spare MIPS.
func (m *Manager) AvailableCapacity() map[string]float64 {
	out := map[string]float64{}
	for _, p := range m.Peers() {
		avail := p.CapacityMIPS * (1 - p.Utilization)
		if avail < 0 {
			avail = 0
		}
		out[p.System] = avail
	}
	return out
}

// SelectSystem returns the routing recommendation: the system with the
// most available capacity. Near-ties (within 5%) rotate round-robin so
// equally loaded systems share new work.
func (m *Manager) SelectSystem() (string, error) {
	avail := m.AvailableCapacity()
	if len(avail) == 0 {
		return "", ErrNoSystems
	}
	names := make([]string, 0, len(avail))
	for n := range avail {
		names = append(names, n)
	}
	sort.Strings(names)
	best := names[0]
	for _, n := range names[1:] {
		if avail[n] > avail[best] {
			best = n
		}
	}
	// Collect near-ties.
	var ties []string
	for _, n := range names {
		if avail[best] <= 0 {
			ties = append(ties, n)
		} else if avail[n] >= 0.95*avail[best] {
			ties = append(ties, n)
		}
	}
	if len(ties) == 0 {
		ties = []string{best}
	}
	m.mu.Lock()
	m.rrCounter++
	pick := ties[m.rrCounter%len(ties)]
	m.mu.Unlock()
	return pick, nil
}

// RouteWeights returns normalized routing weights proportional to
// available capacity (uniform if the sysplex is saturated).
func (m *Manager) RouteWeights() map[string]float64 {
	avail := m.AvailableCapacity()
	total := 0.0
	for _, a := range avail {
		total += a
	}
	out := make(map[string]float64, len(avail))
	if total <= 0 {
		for n := range avail {
			out[n] = 1 / float64(len(avail))
		}
		return out
	}
	for n, a := range avail {
		out[n] = a / total
	}
	return out
}
