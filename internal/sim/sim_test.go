package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run(time.Minute)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != time.Minute {
		t.Fatalf("Now = %v, want horizon", e.Now())
	}
}

func TestEqualTimeInsertionOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run(2 * time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("insertion order broken: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() { fired = true })
	})
	e.Run(time.Second)
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestHorizonStopsRun(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(3*time.Second, func() { ran++ })
	n := e.Run(2 * time.Second)
	if n != 1 || ran != 1 {
		t.Fatalf("n=%d ran=%d, want 1,1", n, ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// Resume past the horizon.
	e.Run(4 * time.Second)
	if ran != 2 {
		t.Fatalf("ran = %d after resume", ran)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++; e.Halt() })
	e.Schedule(2*time.Second, func() { ran++ })
	e.Run(time.Hour)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (halted)", ran)
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.ScheduleAt(5*time.Second, func() { at = e.Now() })
	e.Run(time.Minute)
	if at != 5*time.Second {
		t.Fatalf("fired at %v", at)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(42)
		var times []time.Duration
		var gen func()
		gen = func() {
			times = append(times, e.Now())
			if len(times) < 100 {
				e.Schedule(e.Exp(time.Millisecond), gen)
			}
		}
		e.Schedule(0, gen)
		e.Run(time.Hour)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExpMean(t *testing.T) {
	e := NewEngine(7)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Exp(time.Millisecond)
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(time.Millisecond)) > 0.05*float64(time.Millisecond) {
		t.Fatalf("exp mean = %v, want ~1ms", time.Duration(mean))
	}
	if e.Exp(0) != 0 || e.Exp(-time.Second) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestUniform(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 1000; i++ {
		v := e.Uniform(time.Millisecond, 2*time.Millisecond)
		if v < time.Millisecond || v >= 2*time.Millisecond {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	if e.Uniform(time.Second, time.Second) != time.Second {
		t.Fatal("degenerate range")
	}
}

func TestServerSingleJob(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "cpu", 1)
	var doneAt time.Duration
	e.Schedule(0, func() { s.Visit(3*time.Second, func() { doneAt = e.Now() }) })
	e.Run(10 * time.Second)
	if doneAt != 3*time.Second {
		t.Fatalf("done at %v", doneAt)
	}
	if s.Completions() != 1 {
		t.Fatalf("completions = %d", s.Completions())
	}
	if u := s.Utilization(); math.Abs(u-0.3) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.3", u)
	}
}

func TestServerFCFSQueueing(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "cpu", 1)
	var done []int
	e.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			i := i
			s.Visit(time.Second, func() { done = append(done, i) })
		}
	})
	e.Run(10 * time.Second)
	for i := range done {
		if done[i] != i {
			t.Fatalf("FCFS violated: %v", done)
		}
	}
	// Jobs finish at 1s, 2s, 3s → mean wait = (0+1+2)/3 s.
	if mw := s.MeanWait(); mw != time.Second {
		t.Fatalf("mean wait = %v, want 1s", mw)
	}
}

func TestServerMultiServerParallelism(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "cpu", 2)
	var last time.Duration
	e.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			s.Visit(time.Second, func() { last = e.Now() })
		}
	})
	e.Run(10 * time.Second)
	if last != 2*time.Second {
		t.Fatalf("4 jobs on 2 servers finished at %v, want 2s", last)
	}
}

func TestServerQueueStats(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, "d", 1)
	e.Schedule(0, func() {
		s.Visit(4*time.Second, nil)
		s.Visit(time.Second, nil)
	})
	e.Run(4 * time.Second)
	// One job queued for 4s out of 4s elapsed → mean queue length 1.
	if q := s.MeanQueueLength(); math.Abs(q-1.0) > 1e-9 {
		t.Fatalf("mean queue length = %g, want 1", q)
	}
}

func TestServerPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity 0")
		}
	}()
	NewServer(NewEngine(1), "bad", 0)
}

func TestMM1AgainstTheory(t *testing.T) {
	// M/M/1 with λ=0.5/ms, μ=1/ms → ρ=0.5, mean wait in queue = ρ/(μ-λ) = 1ms.
	e := NewEngine(99)
	s := NewServer(e, "mm1", 1)
	var arrive func()
	arrive = func() {
		s.Visit(e.Exp(time.Millisecond), nil)
		e.Schedule(e.Exp(2*time.Millisecond), arrive)
	}
	e.Schedule(0, arrive)
	e.Run(200 * time.Second)
	if u := s.Utilization(); math.Abs(u-0.5) > 0.05 {
		t.Fatalf("utilization = %g, want ~0.5", u)
	}
	mw := float64(s.MeanWait()) / float64(time.Millisecond)
	if math.Abs(mw-1.0) > 0.25 {
		t.Fatalf("mean wait = %gms, want ~1ms (M/M/1)", mw)
	}
}

func TestTally(t *testing.T) {
	var ta Tally
	for _, v := range []float64{1, 2, 3, 4} {
		ta.Add(v)
	}
	if ta.N() != 4 || ta.Mean() != 2.5 || ta.Min() != 1 || ta.Max() != 4 {
		t.Fatalf("tally = %+v", ta)
	}
	want := math.Sqrt((1.5*1.5 + 0.5*0.5 + 0.5*0.5 + 1.5*1.5) / 3)
	if math.Abs(ta.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", ta.StdDev(), want)
	}
	var empty Tally
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty tally should report zeros")
	}
}

// Property: events always execute in nondecreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(3)
		var times []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run(time.Hour)
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-server station completes all jobs and total busy
// time equals total service time when all jobs fit the horizon.
func TestServerConservationProperty(t *testing.T) {
	f := func(svc []uint8) bool {
		e := NewEngine(5)
		s := NewServer(e, "c", 1)
		var total time.Duration
		e.Schedule(0, func() {
			for _, v := range svc {
				d := time.Duration(v) * time.Microsecond
				total += d
				s.Visit(d, nil)
			}
		})
		e.Run(time.Hour)
		if s.Completions() != int64(len(svc)) {
			return false
		}
		s.accumulate()
		return s.busyTime == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
