// Package sim is a deterministic discrete-event simulation kernel. It
// stands in for the hardware performance testbed used by the paper's
// scalability studies (S/390 9672 systems, [8,9]): the Figure 3 curves
// and the §4 overhead measurements are *measured* on workloads executed
// by this kernel rather than asserted analytically.
//
// The kernel is callback-based: events are closures scheduled at virtual
// times, executed in (time, insertion) order by a single goroutine, so a
// simulation with a fixed seed is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Engine runs a single simulation. It is not safe for concurrent use;
// all event callbacks run on the caller's goroutine inside Run.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    int64
	rng    *rand.Rand
	halted bool
}

// NewEngine returns an Engine with a deterministic RNG seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic RNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule queues fn to run after delay of virtual time. A negative
// delay is treated as zero. Events at equal times run in insertion order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt queues fn at absolute virtual time at (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	e.Schedule(at-e.now, fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue is empty, the horizon is passed,
// or Halt is called. Events scheduled exactly at the horizon still run.
// It returns the number of events executed.
func (e *Engine) Run(horizon time.Duration) int {
	e.halted = false
	n := 0
	for len(e.events) > 0 && !e.halted {
		ev := e.events[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Exp draws an exponentially distributed duration with the given mean.
func (e *Engine) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(e.rng.ExpFloat64() * float64(mean))
}

// Uniform draws uniformly from [lo, hi).
func (e *Engine) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(e.rng.Int63n(int64(hi-lo)))
}

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Server is a multi-server FCFS queueing station (c identical servers,
// one shared queue), used to model CPU complexes, CF processors, and
// DASD devices. All methods must be called from within engine events.
type Server struct {
	eng      *Engine
	name     string
	capacity int
	busy     int
	queue    []job

	// statistics
	busyTime     time.Duration // integral of busy servers over time
	queueTime    time.Duration // integral of queue length over time
	lastChange   time.Duration
	completions  int64
	totalService time.Duration
	totalWait    time.Duration
}

type job struct {
	service  time.Duration
	done     func()
	enqueued time.Duration
}

// NewServer creates a station with the given number of servers.
func NewServer(eng *Engine, name string, capacity int) *Server {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: server %q capacity %d < 1", name, capacity))
	}
	return &Server{eng: eng, name: name, capacity: capacity}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Visit enqueues a job needing the given service time; done (optional)
// runs at completion.
func (s *Server) Visit(service time.Duration, done func()) {
	s.accumulate()
	if s.busy < s.capacity {
		s.busy++
		s.start(job{service: service, done: done, enqueued: s.eng.now})
		return
	}
	s.queue = append(s.queue, job{service: service, done: done, enqueued: s.eng.now})
}

func (s *Server) start(j job) {
	s.totalWait += s.eng.now - j.enqueued
	s.eng.Schedule(j.service, func() {
		s.accumulate()
		s.completions++
		s.totalService += j.service
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		} else {
			s.busy--
		}
		if j.done != nil {
			j.done()
		}
	})
}

func (s *Server) accumulate() {
	dt := s.eng.now - s.lastChange
	s.busyTime += time.Duration(int64(dt) * int64(s.busy))
	s.queueTime += time.Duration(int64(dt) * int64(len(s.queue)))
	s.lastChange = s.eng.now
}

// Utilization returns mean busy fraction per server since time zero.
func (s *Server) Utilization() float64 {
	s.accumulate()
	if s.eng.now == 0 {
		return 0
	}
	return float64(s.busyTime) / (float64(s.eng.now) * float64(s.capacity))
}

// MeanQueueLength returns the time-averaged queue length.
func (s *Server) MeanQueueLength() float64 {
	s.accumulate()
	if s.eng.now == 0 {
		return 0
	}
	return float64(s.queueTime) / float64(s.eng.now)
}

// Completions returns the number of finished jobs.
func (s *Server) Completions() int64 { return s.completions }

// MeanWait returns the average time a job spent queued before service.
func (s *Server) MeanWait() time.Duration {
	if s.completions == 0 {
		return 0
	}
	return s.totalWait / time.Duration(s.completions)
}

// QueueLen returns the instantaneous queue length.
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy returns the number of busy servers.
func (s *Server) Busy() int { return s.busy }

// Tally accumulates scalar observations (completion counts, response
// times in seconds, etc.) for simulation outputs.
type Tally struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (t *Tally) Add(v float64) {
	if t.n == 0 {
		t.min, t.max = v, v
	} else {
		if v < t.min {
			t.min = v
		}
		if v > t.max {
			t.max = v
		}
	}
	t.n++
	t.sum += v
	t.sumSq += v * v
}

// N returns the observation count.
func (t *Tally) N() int64 { return t.n }

// Mean returns the sample mean (0 if empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Sum returns the sum of observations.
func (t *Tally) Sum() float64 { return t.sum }

// Min returns the smallest observation (0 if empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 if empty).
func (t *Tally) Max() float64 { return t.max }

// StdDev returns the sample standard deviation (0 if n < 2).
func (t *Tally) StdDev() float64 {
	if t.n < 2 {
		return 0
	}
	mean := t.Mean()
	v := (t.sumSq - float64(t.n)*mean*mean) / float64(t.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
