// Package timer emulates the Sysplex Timer of Figure 1: a common time
// reference so that timestamps obtained on different systems are
// mutually consistent (§3.1). Database log merging and lock recovery
// depend on this ordering guarantee.
//
// Stamp values issued by one Timer are strictly increasing no matter
// which system requests them, mirroring the architecture's guarantee
// that two STCK values observed in causal order never tie or invert.
package timer

import (
	"fmt"
	"sync"
	"time"

	"sysplex/internal/vclock"
)

// Timer is the shared sysplex time reference.
type Timer struct {
	mu    sync.Mutex
	clock vclock.Clock
	last  time.Time
}

// New returns a Timer reading from clock.
func New(clock vclock.Clock) *Timer {
	if clock == nil {
		clock = vclock.Real()
	}
	return &Timer{clock: clock}
}

// Stamp returns the next sysplex timestamp. Successive calls from any
// mix of systems return strictly increasing values.
func (t *Timer) Stamp() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now()
	if !now.After(t.last) {
		now = t.last.Add(time.Nanosecond)
	}
	t.last = now
	return now
}

// Now returns the current sysplex time without consuming a stamp.
func (t *Timer) Now() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.After(t.clock.Now()) {
		return t.last
	}
	return t.clock.Now()
}

// LocalTOD models one system's local time-of-day clock, steered to the
// sysplex timer. Drift can be injected for tests; Sync snaps the local
// clock back to the common reference, and Stamp never violates the
// sysplex-wide ordering because it consults the shared Timer.
type LocalTOD struct {
	mu     sync.Mutex
	sys    string
	timer  *Timer
	offset time.Duration // injected drift, visible via SkewedNow only
}

// NewLocalTOD returns the local TOD clock for system sys.
func NewLocalTOD(sys string, timer *Timer) *LocalTOD {
	return &LocalTOD{sys: sys, timer: timer}
}

// System returns the owning system name.
func (l *LocalTOD) System() string { return l.sys }

// Stamp returns a sysplex-consistent timestamp for this system.
func (l *LocalTOD) Stamp() time.Time { return l.timer.Stamp() }

// InjectDrift adds artificial drift to the local oscillator.
func (l *LocalTOD) InjectDrift(d time.Duration) {
	l.mu.Lock()
	l.offset += d
	l.mu.Unlock()
}

// SkewedNow returns the unsteered local reading (reference + drift);
// only diagnostics look at this, never the data path.
func (l *LocalTOD) SkewedNow() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.timer.Now().Add(l.offset)
}

// Skew returns the current injected drift.
func (l *LocalTOD) Skew() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// Sync steers the local oscillator back to the sysplex reference,
// returning the correction applied.
func (l *LocalTOD) Sync() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	corr := -l.offset
	l.offset = 0
	return corr
}

// String identifies the clock for logs.
func (l *LocalTOD) String() string {
	return fmt.Sprintf("TOD(%s skew=%v)", l.sys, l.Skew())
}
