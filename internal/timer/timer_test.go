package timer

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sysplex/internal/vclock"
)

var t0 = time.Date(1996, 4, 15, 0, 0, 0, 0, time.UTC)

func TestStampStrictlyIncreasing(t *testing.T) {
	fc := vclock.NewFake(t0)
	tm := New(fc)
	prev := tm.Stamp()
	for i := 0; i < 1000; i++ {
		// The fake clock does not move, yet stamps must still increase.
		s := tm.Stamp()
		if !s.After(prev) {
			t.Fatalf("stamp %v not after %v", s, prev)
		}
		prev = s
	}
}

func TestStampFollowsClock(t *testing.T) {
	fc := vclock.NewFake(t0)
	tm := New(fc)
	tm.Stamp()
	fc.Advance(time.Hour)
	s := tm.Stamp()
	if s.Before(t0.Add(time.Hour)) {
		t.Fatalf("stamp %v did not follow clock", s)
	}
}

func TestCrossSystemOrdering(t *testing.T) {
	// Two systems taking stamps concurrently never observe ties, and the
	// merged sequence is strictly sorted — the property log merge needs.
	tm := New(vclock.Real())
	const perSys = 2000
	var wg sync.WaitGroup
	results := make([][]time.Time, 4)
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]time.Time, perSys)
			for i := range out {
				out[i] = tm.Stamp()
			}
			results[s] = out
		}()
	}
	wg.Wait()
	var all []time.Time
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Before(all[j]) })
	for i := 1; i < len(all); i++ {
		if !all[i].After(all[i-1]) {
			t.Fatalf("duplicate sysplex timestamp at %d: %v", i, all[i])
		}
	}
}

func TestNowDoesNotConsume(t *testing.T) {
	fc := vclock.NewFake(t0)
	tm := New(fc)
	n1 := tm.Now()
	n2 := tm.Now()
	if !n1.Equal(n2) {
		t.Fatal("Now consumed a stamp")
	}
	s := tm.Stamp()
	if !s.After(n1) && !s.Equal(n1) {
		t.Fatalf("stamp %v before Now %v", s, n1)
	}
	// Now never runs behind the last issued stamp.
	if tm.Now().Before(s) {
		t.Fatal("Now ran behind last stamp")
	}
}

func TestLocalTODDriftAndSync(t *testing.T) {
	fc := vclock.NewFake(t0)
	tm := New(fc)
	l := NewLocalTOD("SYS1", tm)
	l.InjectDrift(3 * time.Second)
	l.InjectDrift(-1 * time.Second)
	if l.Skew() != 2*time.Second {
		t.Fatalf("skew = %v", l.Skew())
	}
	if got := l.SkewedNow(); !got.Equal(tm.Now().Add(2 * time.Second)) {
		t.Fatalf("SkewedNow = %v", got)
	}
	if corr := l.Sync(); corr != -2*time.Second {
		t.Fatalf("correction = %v", corr)
	}
	if l.Skew() != 0 {
		t.Fatal("skew not cleared")
	}
	if l.System() != "SYS1" || l.String() == "" {
		t.Fatal("identity accessors broken")
	}
}

func TestDriftedSystemStampsStillOrdered(t *testing.T) {
	// Even a badly drifted system gets correct stamps from the shared
	// timer: consistency does not depend on local oscillators.
	fc := vclock.NewFake(t0)
	tm := New(fc)
	a := NewLocalTOD("SYS1", tm)
	b := NewLocalTOD("SYS2", tm)
	b.InjectDrift(-time.Hour)
	s1 := a.Stamp()
	s2 := b.Stamp()
	s3 := a.Stamp()
	if !s2.After(s1) || !s3.After(s2) {
		t.Fatalf("stamps not ordered: %v %v %v", s1, s2, s3)
	}
}

// Property: for any interleaving of Advance and Stamp, stamps are
// strictly increasing.
func TestStampMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		fc := vclock.NewFake(t0)
		tm := New(fc)
		prev := tm.Stamp()
		for _, s := range steps {
			if s%2 == 0 {
				fc.Advance(time.Duration(s) * time.Microsecond)
			}
			st := tm.Stamp()
			if !st.After(prev) {
				return false
			}
			prev = st
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
