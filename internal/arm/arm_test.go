package arm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sysplex/internal/cds"
	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
	"sysplex/internal/xcf"
)

type fixture struct {
	plex  *xcf.Sysplex
	store *cds.Store
	arm   *Manager

	mu       sync.Mutex
	restarts map[string][]string // system -> restarted element names
	failSys  map[string]bool     // systems whose restarter errors
}

func newFixture(t *testing.T, systems ...string) *fixture {
	t.Helper()
	farm := dasd.NewFarm(vclock.Real())
	farm.AddVolume("V", 256, 1)
	pri, _ := farm.Allocate("V", "ARM.CDS", 128)
	store, _ := cds.New("ARM", vclock.Real(), pri, nil, cds.Options{})
	plex := xcf.NewSysplex("PLEX1", vclock.Real(), nil, farm, xcf.Options{})
	fx := &fixture{
		plex:     plex,
		store:    store,
		restarts: map[string][]string{},
		failSys:  map[string]bool{},
	}
	fx.arm = New(plex, store, nil)
	for _, s := range systems {
		if _, err := plex.Join(s); err != nil {
			t.Fatal(err)
		}
		sys := s
		fx.arm.BindRestarter(sys, func(e Element) error {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			if fx.failSys[sys] {
				return errors.New("restart failed")
			}
			fx.restarts[sys] = append(fx.restarts[sys], e.Name)
			return nil
		})
	}
	return fx
}

func (fx *fixture) restartedOn(sys string) []string {
	fx.mu.Lock()
	defer fx.mu.Unlock()
	return append([]string(nil), fx.restarts[sys]...)
}

func TestRegisterAndQuery(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2")
	if err := fx.arm.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true}); err != nil {
		t.Fatal(err)
	}
	if err := fx.arm.Register("DB2A", "SYS1", ElementPolicy{}); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	e, err := fx.arm.Element("DB2A")
	if err != nil || e.System != "SYS1" || e.State != StateRunning {
		t.Fatalf("e = %+v err=%v", e, err)
	}
	if _, err := fx.arm.Element("NOPE"); !errors.Is(err, ErrUnknownElement) {
		t.Fatalf("err = %v", err)
	}
	if all := fx.arm.Elements(); len(all) != 1 || all[0].Name != "DB2A" {
		t.Fatalf("elements = %v", all)
	}
	if err := fx.arm.Deregister("DB2A"); err != nil {
		t.Fatal(err)
	}
	if err := fx.arm.Deregister("DB2A"); !errors.Is(err, ErrUnknownElement) {
		t.Fatalf("err = %v", err)
	}
}

func TestInPlaceRestart(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.arm.Register("CICSA", "SYS1", ElementPolicy{MaxRestarts: 2})
	var events []RestartEvent
	fx.arm.OnRestart(func(ev RestartEvent) { events = append(events, ev) })
	if err := fx.arm.ElementFailed("CICSA"); err != nil {
		t.Fatal(err)
	}
	if got := fx.restartedOn("SYS1"); len(got) != 1 || got[0] != "CICSA" {
		t.Fatalf("restarts = %v", got)
	}
	if len(events) != 1 || !events[0].InPlace || events[0].To != "SYS1" {
		t.Fatalf("events = %+v", events)
	}
	e, _ := fx.arm.Element("CICSA")
	if e.Restarts != 1 || e.State != StateRunning {
		t.Fatalf("e = %+v", e)
	}
}

func TestRestartThreshold(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.arm.Register("LOOPY", "SYS1", ElementPolicy{MaxRestarts: 2})
	for i := 0; i < 2; i++ {
		if err := fx.arm.ElementFailed("LOOPY"); err != nil {
			t.Fatal(err)
		}
	}
	err := fx.arm.ElementFailed("LOOPY")
	if !errors.Is(err, ErrThreshold) {
		t.Fatalf("err = %v", err)
	}
	e, _ := fx.arm.Element("LOOPY")
	if e.State != StateFailed {
		t.Fatalf("state = %v", e.State)
	}
}

func TestCrossSystemRestartOnSystemFailure(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2", "SYS3")
	fx.arm.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true})
	fx.arm.Register("LOCAL", "SYS1", ElementPolicy{CrossSystem: false})
	// Failure detection triggers ARM automatically via the XCF hook.
	fx.plex.PartitionNow("SYS1")
	waitRestart(t, fx, "DB2A")
	e, _ := fx.arm.Element("DB2A")
	if e.System == "SYS1" || e.State != StateRunning || e.Restarts != 1 {
		t.Fatalf("e = %+v", e)
	}
	// Non-cross-system element stays down.
	le, _ := fx.arm.Element("LOCAL")
	if le.State != StateFailed {
		t.Fatalf("LOCAL = %+v", le)
	}
}

func TestRestartGroupAffinity(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2", "SYS3")
	pol := ElementPolicy{CrossSystem: true, RestartGroup: "PAYROLL"}
	fx.arm.Register("DB", "SYS1", pol)
	fx.arm.Register("APP", "SYS1", pol)
	fx.arm.Register("OTHER", "SYS1", ElementPolicy{CrossSystem: true})
	events := fx.arm.RestartForSystem("SYS1")
	if len(events) != 3 {
		t.Fatalf("events = %+v", events)
	}
	db, _ := fx.arm.Element("DB")
	app, _ := fx.arm.Element("APP")
	if db.System != app.System {
		t.Fatalf("restart group split: DB on %s, APP on %s", db.System, app.System)
	}
}

func TestRestartLevelSequencing(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2")
	g := "GRP"
	fx.arm.Register("APP2", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: g, Level: 2})
	fx.arm.Register("DB1", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: g, Level: 1})
	fx.arm.Register("FE3", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: g, Level: 3})
	fx.arm.RestartForSystem("SYS1")
	got := fx.restartedOn("SYS2")
	want := []string{"DB1", "APP2", "FE3"}
	if len(got) != 3 {
		t.Fatalf("restarts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestSubsequentFailureFallsBack(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2", "SYS3")
	fx.arm.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true})
	// SYS2 (the default first pick) fails all restarts; ARM must fall
	// back to SYS3.
	fx.mu.Lock()
	fx.failSys["SYS2"] = true
	fx.mu.Unlock()
	events := fx.arm.RestartForSystem("SYS1")
	if len(events) != 1 || events[0].To != "SYS3" {
		t.Fatalf("events = %+v", events)
	}
}

func TestNoTargetMarksFailed(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.arm.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true})
	events := fx.arm.RestartForSystem("SYS1")
	if len(events) != 0 {
		t.Fatalf("events = %+v", events)
	}
	e, _ := fx.arm.Element("DB2A")
	if e.State != StateFailed {
		t.Fatalf("state = %v", e.State)
	}
}

func TestWLMPickIsUsed(t *testing.T) {
	farm := dasd.NewFarm(vclock.Real())
	farm.AddVolume("V", 64, 1)
	plex := xcf.NewSysplex("P", vclock.Real(), nil, farm, xcf.Options{})
	picked := ""
	m := New(plex, nil, func(exclude map[string]bool) (string, error) {
		picked = "SYS9"
		return "SYS9", nil
	})
	plex.Join("SYS1")
	plex.Join("SYS9")
	restarted := false
	m.BindRestarter("SYS9", func(e Element) error { restarted = true; return nil })
	m.Register("E", "SYS1", ElementPolicy{CrossSystem: true})
	m.RestartForSystem("SYS1")
	if picked != "SYS9" || !restarted {
		t.Fatalf("picked=%q restarted=%v", picked, restarted)
	}
}

func TestStatePersistsAcrossARMRestart(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2")
	fx.arm.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: "G"})
	// A new ARM instance over the same couple data set sees the element.
	arm2 := New(fx.plex, fx.store, nil)
	if err := arm2.LoadState(); err != nil {
		t.Fatal(err)
	}
	e, err := arm2.Element("DB2A")
	if err != nil || e.System != "SYS1" || e.Policy.RestartGroup != "G" {
		t.Fatalf("e = %+v err=%v", e, err)
	}
}

func TestRestarterMissing(t *testing.T) {
	fx := newFixture(t, "SYS1")
	fx.arm.Register("X", "SYSZ", ElementPolicy{})
	if err := fx.arm.ElementFailed("X"); !errors.Is(err, ErrNoRestarter) {
		t.Fatalf("err = %v", err)
	}
	if err := fx.arm.ElementFailed("GHOST"); !errors.Is(err, ErrUnknownElement) {
		t.Fatalf("err = %v", err)
	}
}

func TestElementStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateFailed.String() != "failed" ||
		StateRestarting.String() != "restarting" || ElementState(9).String() == "" {
		t.Fatal("state strings")
	}
}

func waitRestart(t *testing.T, fx *fixture, element string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e, err := fx.arm.Element(element); err == nil && e.State == StateRunning && e.Restarts > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("element %s never restarted", element)
}

func TestGroupsRestartIndependently(t *testing.T) {
	fx := newFixture(t, "SYS1", "SYS2", "SYS3")
	fx.arm.Register("A1", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: "GA"})
	fx.arm.Register("B1", "SYS1", ElementPolicy{CrossSystem: true, RestartGroup: "GB"})
	events := fx.arm.RestartForSystem("SYS1")
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	sysOf := map[string]string{}
	for _, ev := range events {
		sysOf[ev.Element] = ev.To
	}
	for _, el := range []string{"A1", "B1"} {
		if sysOf[el] == "" || sysOf[el] == "SYS1" {
			t.Fatalf("element %s restarted on %q", el, sysOf[el])
		}
	}
	_ = fmt.Sprint()
}

// TestColdRestartRecoverPending is the durable path: element state
// written to a file-backed ARM couple data set survives a power cut; a
// reopened manager loads it and re-drives elements whose system did not
// come back, while elements on returning systems are left alone.
func TestColdRestartRecoverPending(t *testing.T) {
	dir := t.TempDir()
	openStore := func() (*cds.Store, *dasd.Farm) {
		farm, err := dasd.OpenFarm(vclock.Real(), dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := farm.AddVolume("V", 256, 1); err != nil {
			t.Fatal(err)
		}
		pri, err := farm.Dataset("ARM.CDS")
		if err != nil {
			if pri, err = farm.Allocate("V", "ARM.CDS", 128); err != nil {
				t.Fatal(err)
			}
		}
		store, err := cds.New("ARM", vclock.Real(), pri, nil, cds.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return store, farm
	}

	store, farm := openStore()
	plex := xcf.NewSysplex("PLEX1", vclock.Real(), nil, nil, xcf.Options{})
	plex.Join("SYS1")
	plex.Join("SYS2")
	m := New(plex, store, nil)
	if err := m.Register("DB2A", "SYS1", ElementPolicy{CrossSystem: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("CICSB", "SYS2", ElementPolicy{CrossSystem: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("PINNED", "SYS2", ElementPolicy{}); err != nil {
		t.Fatal(err)
	}
	dasd.PowerCutFarm(farm)

	// Cold restart: only SYS1 re-forms the sysplex.
	store2, farm2 := openStore()
	defer farm2.Close()
	plex2 := xcf.NewSysplex("PLEX1", vclock.Real(), nil, nil, xcf.Options{})
	plex2.Join("SYS1")
	var restarted []string
	m2 := New(plex2, store2, nil)
	m2.BindRestarter("SYS1", func(e Element) error {
		restarted = append(restarted, e.Name)
		return nil
	})
	if err := m2.LoadState(); err != nil {
		t.Fatal(err)
	}
	if e, err := m2.Element("DB2A"); err != nil || e.System != "SYS1" {
		t.Fatalf("DB2A = %+v err=%v", e, err)
	}
	events := m2.RecoverPending()
	if len(events) != 1 || events[0].Element != "CICSB" || events[0].To != "SYS1" {
		t.Fatalf("events = %+v, want CICSB restarted onto SYS1", events)
	}
	if len(restarted) != 1 || restarted[0] != "CICSB" {
		t.Fatalf("restarted = %v", restarted)
	}
	// The non-cross-system element on the dead system is marked failed.
	if e, _ := m2.Element("PINNED"); e.State != StateFailed {
		t.Fatalf("PINNED state = %v, want failed", e.State)
	}
	// DB2A's system came back: untouched.
	if e, _ := m2.Element("DB2A"); e.State != StateRunning || e.System != "SYS1" {
		t.Fatalf("DB2A = %+v", e)
	}
	// A second pass finds nothing left to do.
	if again := m2.RecoverPending(); len(again) != 0 {
		t.Fatalf("second pass events = %+v", again)
	}
}
