// Package arm implements the MVS Automatic Restart Manager (§2.5): a
// restart service that is aware of the state of every registered
// element on every system (state lives in the ARM couple data set), is
// tied into XCF heartbeat-driven failure detection, asks WLM for a
// restart target based on current utilization, and honours restart
// groups (affinity of related elements), restart levels (sequencing),
// restart thresholds, and subsequent failures during recovery.
package arm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sysplex/internal/cds"
	"sysplex/internal/xcf"
)

// Errors returned by ARM operations.
var (
	ErrUnknownElement = errors.New("arm: element not registered")
	ErrExists         = errors.New("arm: element already registered")
	ErrNoTarget       = errors.New("arm: no eligible restart target")
	ErrThreshold      = errors.New("arm: restart threshold exhausted")
	ErrNoRestarter    = errors.New("arm: no restarter bound for system")
)

// ElementPolicy controls how one element is restarted.
type ElementPolicy struct {
	// RestartGroup names related elements that must restart on the same
	// system ("affinity of related processes").
	RestartGroup string `json:"group,omitempty"`
	// Level sequences restarts: lower levels restart first.
	Level int `json:"level"`
	// MaxRestarts bounds total restarts (0 = unlimited).
	MaxRestarts int `json:"max_restarts"`
	// CrossSystem makes the element eligible for restart on a peer
	// system after a system failure.
	CrossSystem bool `json:"cross_system"`
}

// ElementState is an element's life-cycle state.
type ElementState int

// Element states.
const (
	StateRunning ElementState = iota + 1
	StateFailed
	StateRestarting
)

// String names the state.
func (s ElementState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateFailed:
		return "failed"
	case StateRestarting:
		return "restarting"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Element is a registered restartable unit (a subsystem instance).
type Element struct {
	Name     string        `json:"name"`
	System   string        `json:"system"`
	Policy   ElementPolicy `json:"policy"`
	State    ElementState  `json:"state"`
	Restarts int           `json:"restarts"`
}

// Restarter restarts a named element on the local system, returning an
// error if the restart fails. Subsystem integrations register one per
// system.
type Restarter func(element Element) error

// RestartEvent describes one completed restart.
type RestartEvent struct {
	Element string
	From    string
	To      string
	InPlace bool
}

// Manager is the sysplex ARM instance.
type Manager struct {
	plex    *xcf.Sysplex
	store   *cds.Store
	pick    func(exclude map[string]bool) (string, error)
	updater string // system used for couple data set writes

	mu         sync.Mutex
	elements   map[string]*Element
	restarters map[string]Restarter
	onRestart  []func(RestartEvent)
}

// New creates the ARM manager. pick selects a restart target given an
// exclusion set (wired to WLM; nil picks the least loaded by name
// order among active systems). store may be nil (state then lives only
// in memory).
func New(plex *xcf.Sysplex, store *cds.Store, pick func(exclude map[string]bool) (string, error)) *Manager {
	m := &Manager{
		plex:       plex,
		store:      store,
		pick:       pick,
		elements:   make(map[string]*Element),
		restarters: make(map[string]Restarter),
	}
	if m.pick == nil {
		m.pick = m.defaultPick
	}
	plex.OnSystemFailed(func(sys string) { m.RestartForSystem(sys) })
	return m
}

func (m *Manager) defaultPick(exclude map[string]bool) (string, error) {
	for _, s := range m.plex.ActiveSystems() {
		if !exclude[s] {
			return s, nil
		}
	}
	return "", ErrNoTarget
}

// OnRestart registers a callback for completed restarts.
func (m *Manager) OnRestart(fn func(RestartEvent)) {
	m.mu.Lock()
	m.onRestart = append(m.onRestart, fn)
	m.mu.Unlock()
}

// BindRestarter installs the restart function for a system.
func (m *Manager) BindRestarter(sys string, fn Restarter) {
	m.mu.Lock()
	m.restarters[sys] = fn
	m.mu.Unlock()
}

// Register adds an element running on sys.
func (m *Manager) Register(name, sys string, policy ElementPolicy) error {
	m.mu.Lock()
	if _, ok := m.elements[name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &Element{Name: name, System: sys, Policy: policy, State: StateRunning}
	m.elements[name] = e
	snapshot := *e
	m.mu.Unlock()
	return m.persist(snapshot)
}

// Deregister removes an element (normal shutdown; no restart).
func (m *Manager) Deregister(name string) error {
	m.mu.Lock()
	_, ok := m.elements[name]
	delete(m.elements, name)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownElement, name)
	}
	if m.store != nil {
		return m.store.Update(m.updaterSys(), func(v *cds.View) error {
			v.Delete("arm.element." + name)
			return nil
		})
	}
	return nil
}

// Element returns a snapshot of a registered element.
func (m *Manager) Element(name string) (Element, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.elements[name]
	if !ok {
		return Element{}, fmt.Errorf("%w: %q", ErrUnknownElement, name)
	}
	return *e, nil
}

// Elements lists all registered elements sorted by name.
func (m *Manager) Elements() []Element {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Element, 0, len(m.elements))
	for _, e := range m.elements {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ElementFailed reports the abnormal termination of one element (the
// process died; its system is healthy). ARM restarts it in place,
// subject to the restart threshold.
func (m *Manager) ElementFailed(name string) error {
	m.mu.Lock()
	e, ok := m.elements[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownElement, name)
	}
	if e.Policy.MaxRestarts > 0 && e.Restarts >= e.Policy.MaxRestarts {
		e.State = StateFailed
		m.mu.Unlock()
		return fmt.Errorf("%w: %q after %d restarts", ErrThreshold, name, e.Restarts)
	}
	e.State = StateRestarting
	sys := e.System
	elem := *e
	fn := m.restarters[sys]
	m.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("%w: %q", ErrNoRestarter, sys)
	}
	if err := fn(elem); err != nil {
		m.mu.Lock()
		e.State = StateFailed
		m.mu.Unlock()
		return err
	}
	m.mu.Lock()
	e.State = StateRunning
	e.Restarts++
	snapshot := *e
	cbs := append([]func(RestartEvent){}, m.onRestart...)
	m.mu.Unlock()
	m.persist(snapshot)
	for _, cb := range cbs {
		cb(RestartEvent{Element: name, From: sys, To: sys, InPlace: true})
	}
	return nil
}

// RestartForSystem performs cross-system restart for every eligible
// element that was running on the failed system. Elements are grouped
// by restart group (each group lands on a single target system chosen
// via WLM) and sequenced by level within the group. It returns the
// events performed.
func (m *Manager) RestartForSystem(failedSys string) []RestartEvent {
	m.mu.Lock()
	groups := map[string][]*Element{}
	for _, e := range m.elements {
		if e.System != failedSys || e.State != StateRunning {
			continue
		}
		if !e.Policy.CrossSystem {
			e.State = StateFailed
			continue
		}
		key := e.Policy.RestartGroup
		if key == "" {
			key = "\x00solo\x00" + e.Name // ungrouped: restart independently
		}
		e.State = StateRestarting
		groups[key] = append(groups[key], e)
	}
	groupNames := make([]string, 0, len(groups))
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)
	m.mu.Unlock()

	var events []RestartEvent
	for _, g := range groupNames {
		members := groups[g]
		// Sequencing: lower level first; stable by name.
		sort.Slice(members, func(i, j int) bool {
			if members[i].Policy.Level != members[j].Policy.Level {
				return members[i].Policy.Level < members[j].Policy.Level
			}
			return members[i].Name < members[j].Name
		})
		events = append(events, m.restartGroup(failedSys, members)...)
	}
	return events
}

// restartGroup restarts one restart group onto a single target,
// retrying on another system if the chosen target fails mid-restart
// ("recovery when subsequent failures occur").
func (m *Manager) restartGroup(failedSys string, members []*Element) []RestartEvent {
	exclude := map[string]bool{failedSys: true}
	var events []RestartEvent
	for attempt := 0; attempt < xcf.MaxSystems; attempt++ {
		target, err := m.pick(exclude)
		if err != nil || target == "" {
			break
		}
		m.mu.Lock()
		fn := m.restarters[target]
		m.mu.Unlock()
		if fn == nil || m.plex.State(target) != xcf.StateActive {
			exclude[target] = true
			continue
		}
		ok := true
		for _, e := range members {
			m.mu.Lock()
			if e.Policy.MaxRestarts > 0 && e.Restarts >= e.Policy.MaxRestarts {
				e.State = StateFailed
				m.mu.Unlock()
				continue
			}
			elem := *e
			m.mu.Unlock()
			if err := fn(elem); err != nil {
				// Target failed during recovery; try the next system for
				// the whole group.
				exclude[target] = true
				ok = false
				break
			}
			m.mu.Lock()
			from := e.System
			e.System = target
			e.State = StateRunning
			e.Restarts++
			snapshot := *e
			cbs := append([]func(RestartEvent){}, m.onRestart...)
			m.mu.Unlock()
			m.persist(snapshot)
			ev := RestartEvent{Element: e.Name, From: from, To: target}
			events = append(events, ev)
			for _, cb := range cbs {
				cb(ev)
			}
		}
		if ok {
			return events
		}
	}
	// No target worked: mark the group failed.
	m.mu.Lock()
	for _, e := range members {
		if e.State == StateRestarting {
			e.State = StateFailed
		}
	}
	m.mu.Unlock()
	return events
}

// persist writes an element record to the ARM couple data set.
func (m *Manager) persist(e Element) error {
	if m.store == nil {
		return nil
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return m.store.Update(m.updaterSys(), func(v *cds.View) error {
		return v.Set("arm.element."+e.Name, raw)
	})
}

// updaterSys picks an active system identity for CDS I/O.
func (m *Manager) updaterSys() string {
	if act := m.plex.ActiveSystems(); len(act) > 0 {
		return act[0]
	}
	return "ARM"
}

// RecoverPending drives restart-pending work after LoadState on a cold
// or partial restart: every recovered element whose recorded system is
// not active in the re-formed sysplex is handled exactly like a system
// failure — cross-system-eligible elements restart on an active system,
// the rest are marked failed. (Only Running and Failed states are ever
// persisted: the restart-complete record is written after the restarter
// returns, so a crash mid-restart recovers as Running on a dead system
// and is re-driven here.) Returns the restart events performed.
func (m *Manager) RecoverPending() []RestartEvent {
	active := map[string]bool{}
	for _, s := range m.plex.ActiveSystems() {
		active[s] = true
	}
	m.mu.Lock()
	stale := map[string]bool{}
	for _, e := range m.elements {
		if e.State == StateRunning && !active[e.System] {
			stale[e.System] = true
		}
	}
	m.mu.Unlock()
	names := make([]string, 0, len(stale))
	for s := range stale {
		names = append(names, s)
	}
	sort.Strings(names)
	var events []RestartEvent
	for _, sys := range names {
		events = append(events, m.RestartForSystem(sys)...)
	}
	return events
}

// LoadState restores element state from the couple data set (ARM
// address space restart).
func (m *Manager) LoadState() error {
	if m.store == nil {
		return nil
	}
	sys := m.updaterSys()
	keys, err := m.store.Keys(sys)
	if err != nil {
		return err
	}
	for _, k := range keys {
		const prefix = "arm.element."
		if len(k) <= len(prefix) || k[:len(prefix)] != prefix {
			continue
		}
		raw, ok, err := m.store.Read(sys, k)
		if err != nil || !ok {
			continue
		}
		var e Element
		if err := json.Unmarshal(raw, &e); err != nil {
			continue
		}
		m.mu.Lock()
		if _, exists := m.elements[e.Name]; !exists {
			cp := e
			m.elements[e.Name] = &cp
		}
		m.mu.Unlock()
	}
	return nil
}
