package xcf

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sysplex/internal/cds"
	"sysplex/internal/dasd"
	"sysplex/internal/vclock"
)

var t0 = time.Date(1996, 4, 15, 0, 0, 0, 0, time.UTC)

type fixture struct {
	plex  *Sysplex
	farm  *dasd.Farm
	clock *vclock.Fake
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := vclock.NewFake(t0)
	farm := dasd.NewFarm(vclock.Real())
	if _, err := farm.AddVolume("CPLX01", 256, 2); err != nil {
		t.Fatal(err)
	}
	pri, err := farm.Allocate("CPLX01", "SYS1.XCF.CDS", 128)
	if err != nil {
		t.Fatal(err)
	}
	plexStore, err := cds.New("SYSPLEX", vclock.Real(), pri, nil, cds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plex := NewSysplex("PLEX1", clock, plexStore, farm, Options{
		HeartbeatInterval:        10 * time.Millisecond,
		FailureDetectionInterval: 40 * time.Millisecond,
	})
	plexStore2 := plexStore
	_ = plexStore2
	return &fixture{plex: plex, farm: farm, clock: clock}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestJoinAndState(t *testing.T) {
	fx := newFixture(t)
	s1, err := fx.plex.Join("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Name() != "SYS1" {
		t.Fatalf("name = %q", s1.Name())
	}
	if st := fx.plex.State("SYS1"); st != StateActive {
		t.Fatalf("state = %v", st)
	}
	if _, err := fx.plex.Join("SYS1"); !errors.Is(err, ErrSystemExists) {
		t.Fatalf("dup join err = %v", err)
	}
	if got := fx.plex.ActiveSystems(); len(got) != 1 || got[0] != "SYS1" {
		t.Fatalf("active = %v", got)
	}
	if fx.plex.State("NOPE") != 0 {
		t.Fatal("unknown system has a state")
	}
}

func TestSysplexLimit32(t *testing.T) {
	fx := newFixture(t)
	for i := 0; i < MaxSystems; i++ {
		if _, err := fx.plex.Join(fmt.Sprintf("SYS%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fx.plex.Join("SYS33"); !errors.Is(err, ErrSysplexFull) {
		t.Fatalf("err = %v", err)
	}
	// A planned removal frees a slot.
	fx.plex.System("SYS00").Leave()
	if _, err := fx.plex.Join("SYS33"); err != nil {
		t.Fatalf("join after leave: %v", err)
	}
}

func TestHeartbeatMonitorPartition(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")

	// Both heartbeat; nothing is stale.
	s1.Heartbeat()
	s2.Heartbeat()
	stale, err := fx.plex.MonitorOnce("SYS1")
	if err != nil || len(stale) != 0 {
		t.Fatalf("stale = %v err=%v", stale, err)
	}

	// SYS2 dies silently. After the failure detection interval the
	// monitor partitions it out.
	s2.Kill()
	fx.clock.Advance(30 * time.Millisecond)
	s1.Heartbeat()
	if stale, _ = fx.plex.MonitorOnce("SYS1"); len(stale) != 0 {
		t.Fatalf("partitioned too early: %v", stale)
	}
	fx.clock.Advance(20 * time.Millisecond) // now > 40ms since SYS2's last beat
	stale, err = fx.plex.MonitorOnce("SYS1")
	if err != nil || len(stale) != 1 || stale[0] != "SYS2" {
		t.Fatalf("stale = %v err=%v", stale, err)
	}
	if fx.plex.State("SYS2") != StateFailed {
		t.Fatalf("state = %v", fx.plex.State("SYS2"))
	}
	if !fx.plex.IsFailed("SYS2") {
		t.Fatal("IsFailed = false")
	}
	// Fail-stop: SYS2 is fenced from shared DASD.
	vol, _ := fx.farm.Volume("CPLX01")
	if !vol.Fenced("SYS2") {
		t.Fatal("failed system not fenced from I/O")
	}
	// Idempotent: another monitor pass finds nothing.
	if stale, _ = fx.plex.MonitorOnce("SYS1"); len(stale) != 0 {
		t.Fatalf("re-partitioned: %v", stale)
	}
}

func TestFailedSystemHeartbeatRejected(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	fx.plex.Join("SYS2")
	fx.plex.PartitionNow("SYS1")
	if err := s1.Heartbeat(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
}

func TestRejoinAfterFailure(t *testing.T) {
	fx := newFixture(t)
	fx.plex.Join("SYS1")
	fx.plex.Join("SYS2")
	fx.plex.PartitionNow("SYS2")
	vol, _ := fx.farm.Volume("CPLX01")
	if !vol.Fenced("SYS2") {
		t.Fatal("not fenced")
	}
	// Re-IPL: join again lifts the fence.
	if _, err := fx.plex.Join("SYS2"); err != nil {
		t.Fatal(err)
	}
	if vol.Fenced("SYS2") {
		t.Fatal("fence not lifted on rejoin")
	}
	if fx.plex.State("SYS2") != StateActive {
		t.Fatal("not active after rejoin")
	}
}

func TestGroupJoinLeaveEvents(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")

	var mu sync.Mutex
	var events []Event
	m1, err := s1.JoinGroup("DB2GRP", "DB2A", GroupCallbacks{
		OnEvent: func(ev Event) { mu.Lock(); events = append(events, ev); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.JoinGroup("DB2GRP", "DB2B", GroupCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 1
	})
	mu.Lock()
	if events[0].Kind != MemberJoined || events[0].Member.Member != "DB2B" {
		t.Fatalf("event = %+v", events[0])
	}
	mu.Unlock()

	ids := m1.Members()
	if len(ids) != 2 || ids[0].Member != "DB2A" || ids[1].Member != "DB2B" {
		t.Fatalf("members = %v", ids)
	}
	if ids[1].System != "SYS2" {
		t.Fatalf("member system = %v", ids[1])
	}

	m2.Leave()
	waitFor(t, "leave event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 2
	})
	mu.Lock()
	if events[1].Kind != MemberLeft || events[1].Member.Member != "DB2B" {
		t.Fatalf("event = %+v", events[1])
	}
	mu.Unlock()
	if len(m1.Members()) != 1 {
		t.Fatal("member not removed")
	}
	// Duplicate member name rejected.
	if _, err := s1.JoinGroup("DB2GRP", "DB2A", GroupCallbacks{}); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemberFailedEventOnPartition(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")
	var mu sync.Mutex
	var got []Event
	s1.JoinGroup("G", "A", GroupCallbacks{
		OnEvent: func(ev Event) { mu.Lock(); got = append(got, ev); mu.Unlock() },
	})
	s2.JoinGroup("G", "B", GroupCallbacks{})
	waitFor(t, "join", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) >= 1 })

	fx.plex.PartitionNow("SYS2")
	waitFor(t, "failed event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2 && got[len(got)-1].Kind == MemberFailed
	})
	mu.Lock()
	last := got[len(got)-1]
	mu.Unlock()
	if last.Member.Member != "B" || last.Member.System != "SYS2" {
		t.Fatalf("failed member = %+v", last.Member)
	}
}

func TestSystemMessaging(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")
	var mu sync.Mutex
	var got []string
	s2.BindService("irlm", func(from string, payload []byte) {
		mu.Lock()
		got = append(got, from+":"+string(payload))
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		if err := s1.Send("SYS2", "irlm", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "messages", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 5 })
	mu.Lock()
	defer mu.Unlock()
	for i, g := range got {
		if g != fmt.Sprintf("SYS1:m%d", i) {
			t.Fatalf("ordering broken: %v", got)
		}
	}
}

func TestSendToDeadSystem(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	fx.plex.Join("SYS2")
	fx.plex.PartitionNow("SYS2")
	if err := s1.Send("SYS2", "svc", nil); !errors.Is(err, ErrSystemDown) {
		t.Fatalf("err = %v", err)
	}
	if err := s1.Send("GHOST", "svc", nil); !errors.Is(err, ErrSystemDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemberMessagingAndBroadcast(t *testing.T) {
	fx := newFixture(t)
	s1, _ := fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")
	s3, _ := fx.plex.Join("SYS3")
	var mu sync.Mutex
	recv := map[string][]string{}
	mk := func(s *System, name string) *Member {
		m, err := s.JoinGroup("G", name, GroupCallbacks{
			OnMessage: func(from MemberID, payload []byte) {
				mu.Lock()
				recv[name] = append(recv[name], from.Member+":"+string(payload))
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b, c := mk(s1, "A"), mk(s2, "B"), mk(s3, "C")
	_ = c
	if err := a.Send("B", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "p2p", func() bool { mu.Lock(); defer mu.Unlock(); return len(recv["B"]) == 1 })
	mu.Lock()
	if recv["B"][0] != "A:hello" {
		t.Fatalf("recv = %v", recv["B"])
	}
	mu.Unlock()
	if err := a.Send("NOPE", nil); !errors.Is(err, ErrNoSuchMember) {
		t.Fatalf("err = %v", err)
	}
	if n := b.Broadcast([]byte("all")); n != 2 {
		t.Fatalf("broadcast reached %d", n)
	}
	waitFor(t, "broadcast", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv["A"]) == 1 && len(recv["C"]) == 1
	})
}

func TestOnSystemFailedCallback(t *testing.T) {
	fx := newFixture(t)
	fx.plex.Join("SYS1")
	fx.plex.Join("SYS2")
	var mu sync.Mutex
	var failed []string
	fx.plex.OnSystemFailed(func(sys string) {
		mu.Lock()
		failed = append(failed, sys)
		mu.Unlock()
	})
	fx.plex.PartitionNow("SYS2")
	mu.Lock()
	defer mu.Unlock()
	if len(failed) != 1 || failed[0] != "SYS2" {
		t.Fatalf("failed = %v", failed)
	}
}

func TestPlannedLeaveDoesNotFence(t *testing.T) {
	fx := newFixture(t)
	fx.plex.Join("SYS1")
	s2, _ := fx.plex.Join("SYS2")
	s2.Leave()
	if fx.plex.State("SYS2") != StateLeft {
		t.Fatalf("state = %v", fx.plex.State("SYS2"))
	}
	vol, _ := fx.farm.Volume("CPLX01")
	if vol.Fenced("SYS2") {
		t.Fatal("planned removal must not fence")
	}
	if fx.plex.IsFailed("SYS2") {
		t.Fatal("left != failed")
	}
}

func TestBackgroundDetection(t *testing.T) {
	// End-to-end with real clock: heartbeats run in the background and a
	// killed system is detected and partitioned automatically.
	farm := dasd.NewFarm(vclock.Real())
	farm.AddVolume("V", 256, 1)
	pri, _ := farm.Allocate("V", "CDS", 128)
	store, _ := cds.New("S", vclock.Real(), pri, nil, cds.Options{})
	plex := NewSysplex("PLEX1", vclock.Real(), store, farm, Options{
		HeartbeatInterval:        5 * time.Millisecond,
		FailureDetectionInterval: 25 * time.Millisecond,
	})
	s1, _ := plex.Join("SYS1")
	s2, _ := plex.Join("SYS2")
	stop1 := s1.StartBackground()
	defer stop1()
	stop2 := s2.StartBackground()
	s2.Kill()
	stop2()
	waitFor(t, "automatic partition", func() bool { return plex.IsFailed("SYS2") })
}

func TestStateAndEventStrings(t *testing.T) {
	if StateActive.String() != "active" || StateLeft.String() != "left" || StateFailed.String() != "failed" {
		t.Fatal("state strings")
	}
	if SystemState(9).String() == "" || EventKind(9).String() == "" {
		t.Fatal("unknown strings empty")
	}
	if MemberJoined.String() != "joined" || MemberLeft.String() != "left" || MemberFailed.String() != "failed" {
		t.Fatal("event strings")
	}
	id := MemberID{Group: "G", Member: "M", System: "S"}
	if id.String() != "G/M@S" {
		t.Fatalf("id = %s", id)
	}
}

func TestStatusEncoding(t *testing.T) {
	now := time.Unix(123, 456)
	ts, state := parseStatus(encodeStatus(now, "active"))
	if !ts.Equal(now) || state != "active" {
		t.Fatalf("roundtrip = %v %q", ts, state)
	}
	if _, state := parseStatus([]byte("garbage")); state != "" {
		t.Fatal("garbage accepted")
	}
	if _, state := parseStatus([]byte("active notanumber")); state != "" {
		t.Fatal("bad timestamp accepted")
	}
}
