// Package xcf emulates the base MVS multi-system services of §3.2
// (the Cross-system Coupling Facility): sysplex membership, group
// services (join/leave/signal/notify), inter-system signalling, shared
// system-status state in the couple data set, and processor heartbeat
// monitoring with automatic fail-stop — a sick system is partitioned
// out, terminated, and disconnected from its I/O devices (fenced) so
// surviving components can rely on fail-stop semantics.
package xcf

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sysplex/internal/cds"
	"sysplex/internal/dasd"
	"sysplex/internal/metrics"
	"sysplex/internal/vclock"
)

// Errors returned by XCF services.
var (
	ErrSystemExists  = errors.New("xcf: system name already in sysplex")
	ErrSystemDown    = errors.New("xcf: target system not active")
	ErrNotActive     = errors.New("xcf: system is not active")
	ErrNoSuchMember  = errors.New("xcf: no such group member")
	ErrMemberExists  = errors.New("xcf: member name already in group")
	ErrSysplexFull   = errors.New("xcf: sysplex is at its 32-system limit")
	ErrNoSuchService = errors.New("xcf: no handler bound for service")
)

// MaxSystems is the initial Parallel Sysplex limit (§1: "a
// configuration of 32 systems (initially)").
const MaxSystems = 32

// SystemState is the life-cycle state of a sysplex member system.
type SystemState int

// System states.
const (
	StateActive SystemState = iota + 1
	StateLeft               // planned removal (reconfiguration, upgrade)
	StateFailed             // partitioned out by status monitoring
)

// String names the state.
func (s SystemState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateLeft:
		return "left"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Options configure sysplex timing.
type Options struct {
	// HeartbeatInterval between status updates (default 25ms).
	HeartbeatInterval time.Duration
	// FailureDetectionInterval after which a silent system is declared
	// failed (default 4x heartbeat).
	FailureDetectionInterval time.Duration
}

// MemberID names a group member instance.
type MemberID struct {
	Group  string
	Member string
	System string
}

// String renders "group/member@system".
func (m MemberID) String() string {
	return m.Group + "/" + m.Member + "@" + m.System
}

// Event is a group membership notification.
type Event struct {
	Kind   EventKind
	Member MemberID
}

// EventKind discriminates group events.
type EventKind int

// Group event kinds.
const (
	MemberJoined EventKind = iota + 1
	MemberLeft
	MemberFailed // member's system was partitioned out
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case MemberJoined:
		return "joined"
	case MemberLeft:
		return "left"
	case MemberFailed:
		return "failed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// GroupCallbacks receive group notifications. Callbacks run on the
// member's system dispatcher goroutine; they must not block
// indefinitely. Any callback may be nil.
type GroupCallbacks struct {
	OnEvent   func(Event)
	OnMessage func(from MemberID, payload []byte)
}

// Sysplex is the shared coupling context all systems join.
type Sysplex struct {
	name  string
	clock vclock.Clock
	store *cds.Store
	farm  *dasd.Farm
	opts  Options
	reg   *metrics.Registry

	mu       sync.Mutex
	systems  map[string]*System
	states   map[string]SystemState
	groups   map[string]map[string]*Member // group -> member name -> member
	onFailed []func(sys string)
}

// NewSysplex creates the sysplex context. The couple data set store
// holds system status; farm is fenced on system failure (may be nil in
// unit tests).
func NewSysplex(name string, clock vclock.Clock, store *cds.Store, farm *dasd.Farm, opts Options) *Sysplex {
	if clock == nil {
		clock = vclock.Real()
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 25 * time.Millisecond
	}
	if opts.FailureDetectionInterval == 0 {
		opts.FailureDetectionInterval = 4 * opts.HeartbeatInterval
	}
	return &Sysplex{
		name:    name,
		clock:   clock,
		store:   store,
		farm:    farm,
		opts:    opts,
		reg:     metrics.NewRegistry(),
		systems: make(map[string]*System),
		states:  make(map[string]SystemState),
		groups:  make(map[string]map[string]*Member),
	}
}

// Name returns the sysplex name.
func (p *Sysplex) Name() string { return p.name }

// Metrics exposes XCF instrumentation.
func (p *Sysplex) Metrics() *metrics.Registry { return p.reg }

// Options returns the timing configuration.
func (p *Sysplex) Options() Options { return p.opts }

// OnSystemFailed registers a callback invoked (on the monitor's
// goroutine) whenever a system is partitioned out. ARM wires restart
// processing here.
func (p *Sysplex) OnSystemFailed(fn func(sys string)) {
	p.mu.Lock()
	p.onFailed = append(p.onFailed, fn)
	p.mu.Unlock()
}

// SystemNames lists systems ever joined, sorted.
func (p *Sysplex) SystemNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.states))
	for s := range p.states {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ActiveSystems lists currently active systems, sorted.
func (p *Sysplex) ActiveSystems() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for s, st := range p.states {
		if st == StateActive {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// State returns the state of a system (0 if unknown).
func (p *Sysplex) State(sys string) SystemState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.states[sys]
}

// IsFailed reports whether sys was partitioned out; it is the
// StaleHolder predicate couple data sets use to break dead reserves.
func (p *Sysplex) IsFailed(sys string) bool {
	return p.State(sys) == StateFailed
}

// Join adds a system to the sysplex, writes its status to the couple
// data set, and starts its message dispatcher. New systems can join a
// running sysplex non-disruptively (§2.4).
func (p *Sysplex) Join(name string) (*System, error) {
	p.mu.Lock()
	if _, ok := p.systems[name]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSystemExists, name)
	}
	active := 0
	for _, st := range p.states {
		if st == StateActive {
			active++
		}
	}
	if active >= MaxSystems {
		p.mu.Unlock()
		return nil, ErrSysplexFull
	}
	s := &System{
		plex:     p,
		name:     name,
		inbox:    make(chan envelope, 1024),
		stop:     make(chan struct{}),
		handlers: make(map[string]func(from string, payload []byte)),
	}
	p.systems[name] = s
	p.states[name] = StateActive
	p.mu.Unlock()

	if p.farm != nil {
		p.farm.UnfenceSystem(name) // re-IPL after an earlier failure
	}
	if err := s.Heartbeat(); err != nil {
		return nil, fmt.Errorf("xcf: initial status update: %v", err)
	}
	go s.dispatch()
	p.reg.Counter("xcf.join").Inc()
	return s, nil
}

// System returns a joined system by name (nil if unknown or gone).
func (p *Sysplex) System(name string) *System {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.systems[name]
}

// GroupMembers lists the members of a group, sorted by member name.
func (p *Sysplex) GroupMembers(group string) []MemberID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.groupMembersLocked(group)
}

func (p *Sysplex) groupMembersLocked(group string) []MemberID {
	g := p.groups[group]
	out := make([]MemberID, 0, len(g))
	for _, m := range g {
		out = append(out, m.id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

// MonitorOnce performs one status-monitor pass from the perspective of
// monitor (any active system): every active system whose couple data
// set heartbeat is older than the failure detection interval is
// partitioned out of the sysplex. Returns the systems partitioned.
//
// Production use drives this from a ticker (see StartBackground);
// deterministic tests call it directly.
func (p *Sysplex) MonitorOnce(monitor string) ([]string, error) {
	if p.store == nil {
		return nil, nil
	}
	if p.State(monitor) != StateActive {
		return nil, fmt.Errorf("%w: %q", ErrNotActive, monitor)
	}
	now := p.clock.Now()
	var stale []string
	err := p.store.Update(monitor, func(v *cds.View) error {
		stale = stale[:0]
		for _, sys := range p.ActiveSystems() {
			if sys == monitor {
				continue
			}
			raw, ok, err := v.Get(statusKey(sys))
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			ts, state := parseStatus(raw)
			if state != "active" {
				continue
			}
			if now.Sub(ts) > p.opts.FailureDetectionInterval {
				stale = append(stale, sys)
				v.Set(statusKey(sys), encodeStatus(now, "failed"))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sys := range stale {
		p.partition(sys)
	}
	return stale, nil
}

// partition performs fail-stop isolation of a system: I/O fencing,
// state transition, group member-failed events, and failure callbacks.
func (p *Sysplex) partition(sys string) {
	p.mu.Lock()
	if p.states[sys] != StateActive {
		p.mu.Unlock()
		return
	}
	p.states[sys] = StateFailed
	target := p.systems[sys]
	delete(p.systems, sys)
	var failed []*Member
	for _, g := range p.groups {
		for _, m := range g {
			if m.id.System == sys {
				failed = append(failed, m)
			}
		}
	}
	for _, m := range failed {
		delete(p.groups[m.id.Group], m.id.Member)
	}
	p.mu.Unlock()

	// Terminate the sick system and disconnect it from I/O.
	if target != nil {
		target.terminate()
	}
	if p.farm != nil {
		p.farm.FenceSystem(sys)
	}
	p.reg.Counter("xcf.partition").Inc()

	for _, m := range failed {
		p.notifyGroup(m.id.Group, Event{Kind: MemberFailed, Member: m.id})
	}
	p.mu.Lock()
	cbs := append([]func(string){}, p.onFailed...)
	p.mu.Unlock()
	for _, cb := range cbs {
		cb(sys)
	}
}

// PartitionNow forces immediate partition of a system (operator VARY
// XCF,sys,OFFLINE or SFM policy action). Used by tests and by failure
// injection.
func (p *Sysplex) PartitionNow(sys string) {
	if p.store != nil {
		// Best effort status update; the in-memory state is authoritative
		// for liveness.
		mon := ""
		for _, s := range p.ActiveSystems() {
			if s != sys {
				mon = s
				break
			}
		}
		if mon != "" {
			p.store.Update(mon, func(v *cds.View) error {
				return v.Set(statusKey(sys), encodeStatus(p.clock.Now(), "failed"))
			})
		}
	}
	p.partition(sys)
}

// notifyGroup fans an event to all current members of a group except
// the event's subject (a member is not told about its own join/leave).
func (p *Sysplex) notifyGroup(group string, ev Event) {
	p.mu.Lock()
	members := make([]*Member, 0, len(p.groups[group]))
	for _, m := range p.groups[group] {
		if m.id != ev.Member {
			members = append(members, m)
		}
	}
	p.mu.Unlock()
	for _, m := range members {
		m.deliverEvent(ev)
	}
}

// System is one MVS image joined to the sysplex.
type System struct {
	plex *Sysplex
	name string

	inbox chan envelope
	stop  chan struct{}

	mu       sync.Mutex
	stopped  bool
	handlers map[string]func(from string, payload []byte)
}

type envelope struct {
	from    string
	service string
	member  *Member // non-nil for group messages
	mid     MemberID
	event   *Event
	payload []byte
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Heartbeat writes the system's status record to the couple data set.
// Production drives this from a ticker; tests call it directly.
func (s *System) Heartbeat() error {
	if s.plex.store == nil {
		return nil
	}
	if s.plex.State(s.name) != StateActive {
		return fmt.Errorf("%w: %q", ErrNotActive, s.name)
	}
	return s.plex.store.Update(s.name, func(v *cds.View) error {
		return v.Set(statusKey(s.name), encodeStatus(s.plex.clock.Now(), "active"))
	})
}

// StartBackground launches the heartbeat and monitor loops, returning
// a stop function. The loops run on separate goroutines so a monitor
// pass waiting on couple-data-set serialization can never starve this
// system's own heartbeat (which would look like a failure to peers).
func (s *System) StartBackground() (stop func()) {
	hb := s.plex.clock.NewTicker(s.plex.opts.HeartbeatInterval)
	mon := s.plex.clock.NewTicker(s.plex.opts.FailureDetectionInterval / 2)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-hb.C():
				s.Heartbeat()
			}
		}
	}()
	go func() {
		for {
			select {
			case <-done:
				return
			case <-mon.C():
				s.plex.MonitorOnce(s.name)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			hb.Stop()
			mon.Stop()
			close(done)
		})
	}
}

// BindService registers a handler for point-to-point system messages
// addressed to the named service.
func (s *System) BindService(service string, fn func(from string, payload []byte)) {
	s.mu.Lock()
	s.handlers[service] = fn
	s.mu.Unlock()
}

// Send delivers a payload to the named service on another system over
// the signalling paths. Delivery is asynchronous and ordered per
// sender; sending to a failed system returns ErrSystemDown.
func (s *System) Send(toSystem, service string, payload []byte) error {
	target := s.plex.System(toSystem)
	if target == nil || s.plex.State(toSystem) != StateActive {
		return fmt.Errorf("%w: %q", ErrSystemDown, toSystem)
	}
	cp := append([]byte(nil), payload...)
	target.enqueue(envelope{from: s.name, service: service, payload: cp})
	s.plex.reg.Counter("xcf.msg").Inc()
	return nil
}

// Leave removes the system from the sysplex in a planned, orderly way:
// group members leave with MemberLeft events and status becomes "left".
// No fencing occurs.
func (s *System) Leave() {
	p := s.plex
	p.mu.Lock()
	if p.states[s.name] != StateActive {
		p.mu.Unlock()
		return
	}
	p.states[s.name] = StateLeft
	delete(p.systems, s.name)
	var leaving []*Member
	for _, g := range p.groups {
		for _, m := range g {
			if m.id.System == s.name {
				leaving = append(leaving, m)
			}
		}
	}
	for _, m := range leaving {
		delete(p.groups[m.id.Group], m.id.Member)
	}
	p.mu.Unlock()

	if p.store != nil {
		p.store.Update(s.name, func(v *cds.View) error {
			return v.Set(statusKey(s.name), encodeStatus(p.clock.Now(), "left"))
		})
	}
	s.terminate()
	for _, m := range leaving {
		p.notifyGroup(m.id.Group, Event{Kind: MemberLeft, Member: m.id})
	}
	p.reg.Counter("xcf.leave").Inc()
}

// Kill simulates abrupt system failure: the system stops heartbeating
// and processing work without any notification. Status monitoring on
// the surviving systems will detect and partition it.
func (s *System) Kill() {
	s.terminate()
}

func (s *System) terminate() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.mu.Unlock()
}

// Stopped reports whether the system has been terminated or left.
func (s *System) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

func (s *System) enqueue(env envelope) {
	select {
	case s.inbox <- env:
	case <-s.stop:
	}
}

// dispatch runs handler callbacks for inbound messages and events.
func (s *System) dispatch() {
	for {
		select {
		case <-s.stop:
			return
		case env := <-s.inbox:
			s.handle(env)
		}
	}
}

func (s *System) handle(env envelope) {
	if env.member != nil {
		if env.event != nil {
			if env.member.cb.OnEvent != nil {
				env.member.cb.OnEvent(*env.event)
			}
			return
		}
		if env.member.cb.OnMessage != nil {
			env.member.cb.OnMessage(env.mid, env.payload)
		}
		return
	}
	s.mu.Lock()
	fn := s.handlers[env.service]
	s.mu.Unlock()
	if fn != nil {
		fn(env.from, env.payload)
	}
}

// JoinGroup creates a member of the named group on this system. Other
// members are notified with MemberJoined.
func (s *System) JoinGroup(group, member string, cb GroupCallbacks) (*Member, error) {
	p := s.plex
	p.mu.Lock()
	if p.states[s.name] != StateActive {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotActive, s.name)
	}
	g := p.groups[group]
	if g == nil {
		g = make(map[string]*Member)
		p.groups[group] = g
	}
	if _, ok := g[member]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrMemberExists, group, member)
	}
	m := &Member{sys: s, id: MemberID{Group: group, Member: member, System: s.name}, cb: cb}
	g[member] = m
	p.mu.Unlock()

	if p.store != nil {
		p.store.Update(s.name, func(v *cds.View) error {
			return v.Set(memberKey(group, member), []byte(s.name))
		})
	}
	p.notifyGroup(group, Event{Kind: MemberJoined, Member: m.id})
	p.reg.Counter("xcf.group.join").Inc()
	return m, nil
}

// Member is a group member instance on one system.
type Member struct {
	sys *System
	id  MemberID
	cb  GroupCallbacks

	mu   sync.Mutex
	left bool
}

// ID returns the member identity.
func (m *Member) ID() MemberID { return m.id }

// Members lists the group's current members.
func (m *Member) Members() []MemberID {
	return m.sys.plex.GroupMembers(m.id.Group)
}

// Leave removes the member from its group with a MemberLeft event.
func (m *Member) Leave() {
	p := m.sys.plex
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return
	}
	m.left = true
	m.mu.Unlock()
	p.mu.Lock()
	delete(p.groups[m.id.Group], m.id.Member)
	p.mu.Unlock()
	if p.store != nil {
		p.store.Update(m.id.System, func(v *cds.View) error {
			v.Delete(memberKey(m.id.Group, m.id.Member))
			return nil
		})
	}
	p.notifyGroup(m.id.Group, Event{Kind: MemberLeft, Member: m.id})
}

// Send delivers a payload to a named member of the same group.
func (m *Member) Send(toMember string, payload []byte) error {
	p := m.sys.plex
	p.mu.Lock()
	target := p.groups[m.id.Group][toMember]
	p.mu.Unlock()
	if target == nil {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchMember, m.id.Group, toMember)
	}
	cp := append([]byte(nil), payload...)
	target.sys.enqueue(envelope{member: target, mid: m.id, payload: cp})
	p.reg.Counter("xcf.group.msg").Inc()
	return nil
}

// Broadcast sends a payload to every other member of the group.
func (m *Member) Broadcast(payload []byte) int {
	p := m.sys.plex
	p.mu.Lock()
	targets := make([]*Member, 0, len(p.groups[m.id.Group]))
	for _, t := range p.groups[m.id.Group] {
		if t != m {
			targets = append(targets, t)
		}
	}
	p.mu.Unlock()
	for _, t := range targets {
		cp := append([]byte(nil), payload...)
		t.sys.enqueue(envelope{member: t, mid: m.id, payload: cp})
	}
	p.reg.Counter("xcf.group.msg").Add(int64(len(targets)))
	return len(targets)
}

func (m *Member) deliverEvent(ev Event) {
	evCopy := ev
	m.sys.enqueue(envelope{member: m, event: &evCopy})
}

func statusKey(sys string) string { return "xcf.status." + sys }

func memberKey(group, member string) string {
	return "xcf.group." + group + "." + member
}

func encodeStatus(t time.Time, state string) []byte {
	return []byte(state + " " + strconv.FormatInt(t.UnixNano(), 10))
}

func parseStatus(raw []byte) (time.Time, string) {
	parts := strings.SplitN(string(raw), " ", 2)
	if len(parts) != 2 {
		return time.Time{}, ""
	}
	ns, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return time.Time{}, ""
	}
	return time.Unix(0, ns), parts[0]
}
