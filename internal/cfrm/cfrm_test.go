package cfrm

import (
	"context"
	"errors"
	"testing"
	"time"

	"sysplex/internal/cf"
)

func TestNewDefaultsToDuplexedPair(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Primary != "CF01" || st.Secondary != "CF02" || st.State != "duplexed" {
		t.Fatalf("status = %+v", st)
	}
	if m.Metrics().Gauge("cfrm.duplexed").Value() != 1 {
		t.Fatal("duplexed gauge not set")
	}
}

func TestNewSimplexMode(t *testing.T) {
	m, err := New(Policy{Mode: ModeSimplex, Candidates: []string{"A", "B"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Primary != "A" || st.Secondary != "" || st.State != "simplex" {
		t.Fatalf("status = %+v", st)
	}
}

func TestNewRejectsDuplicateCandidates(t *testing.T) {
	if _, err := New(Policy{Candidates: []string{"CF01", "CF01"}}, nil); err == nil {
		t.Fatal("duplicate candidates accepted")
	}
}

func TestReportFailureOfPrimaryFailsOverAndReduplexes(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.Front().AllocateLockStructure("IRLM", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(context.Background(), "SYS1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Obtain(context.Background(), 3, "SYS1", cf.Exclusive); err != nil {
		t.Fatal(err)
	}

	m.ReportFailure("CF01")

	// Failover is synchronous from ReportFailure; service continues.
	if got := m.Primary().Name(); got != "CF02" {
		t.Fatalf("primary = %s, want CF02", got)
	}
	if _, err := ls.Obtain(context.Background(), 4, "SYS1", cf.Share); err != nil {
		t.Fatalf("command after failover: %v", err)
	}
	// Background re-duplex lands in CF03 with the structures copied.
	if err := m.WaitDuplexed(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	sec := m.Secondary()
	if sec.Name() != "CF03" {
		t.Fatalf("new secondary = %s, want CF03", sec.Name())
	}
	names := sec.StructureNames()
	if len(names) != 1 || names[0] != "IRLM" {
		t.Fatalf("new secondary structures = %v", names)
	}
	st := m.Status()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if len(st.Failed) != 1 || st.Failed[0] != "CF01" {
		t.Fatalf("failed list = %v", st.Failed)
	}
}

func TestReportFailureOfSecondaryBreaksAndReduplexes(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Front().AllocateCacheStructure("GBP0", 32); err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("CF02")
	if got := m.Primary().Name(); got != "CF01" {
		t.Fatalf("primary = %s, want CF01 (unaffected)", got)
	}
	if err := m.WaitDuplexed(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Secondary().Name(); got != "CF03" {
		t.Fatalf("secondary = %s, want CF03", got)
	}
}

func TestReportFailureUnknownOrRepeatedIsNoop(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("CF99") // unknown
	m.ReportFailure("CF02")
	if err := m.WaitDuplexed(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("CF02") // already failed: no second reaction
	if got := m.Secondary().Name(); got != "CF03" {
		t.Fatalf("secondary = %s", got)
	}
}

func TestSurvivesSerialFailuresPastCandidateList(t *testing.T) {
	m, err := New(Policy{Candidates: []string{"CF01", "CF02"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.Front().AllocateLockStructure("IRLM", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(context.Background(), "SYS1"); err != nil {
		t.Fatal(err)
	}
	// Kill primaries repeatedly; the manager generates facilities past
	// the candidate list and never reuses a name.
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		name := m.Primary().Name()
		if seen[name] {
			t.Fatalf("facility name %s reused", name)
		}
		seen[name] = true
		if err := m.WaitDuplexed(5 * time.Second); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		m.ReportFailure(name)
		if _, err := ls.Obtain(context.Background(), i%16, "SYS1", cf.Share); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if n := m.Status().Failovers; n != 4 {
		t.Fatalf("failovers = %d, want 4", n)
	}
}

func TestProbeOnceDetectsFailedPrimary(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Primary().Fail() // facility dies silently; no command trips it
	m.ProbeOnce()
	if got := m.Primary().Name(); got != "CF02" {
		t.Fatalf("primary after probe = %s, want CF02", got)
	}
	if m.Status().Failovers != 1 {
		t.Fatalf("failovers = %d", m.Status().Failovers)
	}
}

func TestRebuildFromDuplexed(t *testing.T) {
	m, err := New(Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.Front().AllocateLockStructure("IRLM", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(context.Background(), "SYS1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// CF02 promoted, CF01 retired, re-duplexed into CF03 synchronously.
	st := m.Status()
	if st.Primary != "CF02" || st.Secondary != "CF03" || st.Rebuilds != 1 {
		t.Fatalf("status = %+v", st)
	}
	// The retired facility is dead weight: failing it must not matter.
	m.Facility("CF01").Fail()
	if _, err := ls.Obtain(context.Background(), 0, "SYS1", cf.Share); err != nil {
		t.Fatal(err)
	}
	// Rebuild again: names keep advancing.
	if err := m.Rebuild(); err != nil {
		t.Fatal(err)
	}
	st = m.Status()
	if st.Primary != "CF03" || st.Secondary != "CF04" || st.Rebuilds != 2 {
		t.Fatalf("status = %+v", st)
	}
}

func TestRebuildFromSimplexIsAllOrNothing(t *testing.T) {
	// Storage sized so the primary holds the structure but a fresh
	// candidate cannot: the establish step of Rebuild must fail and
	// leave the old facility current and serving.
	m, err := New(Policy{Mode: ModeSimplex, Storage: 16 * 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.Front().AllocateLockStructure("IRLM", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(context.Background(), "SYS1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Front().AllocateCacheStructure("GBP0", 1); err == nil {
		t.Fatal("expected storage-constrained allocation to fail") // sanity: bound is tight
	}
	old := m.Primary()
	if err := m.Rebuild(); err != nil {
		t.Fatal(err) // lock structure alone fits: rebuild succeeds
	}
	if m.Primary() == old {
		t.Fatal("rebuild did not switch facilities")
	}
	if m.Primary().Name() != "CF02" {
		t.Fatalf("primary = %s", m.Primary().Name())
	}
	// Simplex policy: no secondary is re-established after the switch.
	if m.Secondary() != nil {
		t.Fatal("simplex policy must stay simplex after rebuild")
	}
	if _, err := ls.Obtain(context.Background(), 0, "SYS1", cf.Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildFailureLeavesOldFacilityCurrent(t *testing.T) {
	// Two structures whose combined size exceeds per-facility storage
	// can never exist together... so instead: make every facility big
	// enough for the structures, then exhaust the target by failing the
	// establish step via a poisoned candidate — simplest deterministic
	// path: simplex manager whose next candidate is pre-failed.
	m, err := New(Policy{Mode: ModeSimplex}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.Front().AllocateLockStructure("IRLM", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(context.Background(), "SYS1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Obtain(context.Background(), 5, "SYS1", cf.Exclusive); err != nil {
		t.Fatal(err)
	}
	// Fail the primary: simplex, no failover possible. Rebuild must
	// still move the structures — the clone reads the structure image
	// (standing in for connector-held state) — restoring service with
	// zero committed-state loss.
	m.ReportFailure("CF01")
	if _, err := ls.Obtain(context.Background(), 6, "SYS1", cf.Share); !errors.Is(err, cf.ErrCFDown) {
		t.Fatalf("err = %v, want ErrCFDown while down", err)
	}
	if err := m.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := m.Primary().Name(); got != "CF02" {
		t.Fatalf("primary = %s", got)
	}
	// Pre-failure committed interest survived the rebuild.
	_, excl, err := ls.Interest(5, "SYS1")
	if err != nil || excl != 1 {
		t.Fatalf("interest after rebuild = %d, %v", excl, err)
	}
	if _, err := ls.Obtain(context.Background(), 7, "SYS1", cf.Share); err != nil {
		t.Fatal(err)
	}
}
