// Package cfrm emulates CF Resource Management: the policy-driven
// subsystem that owns the sysplex's fleet of coupling facilities and
// keeps structures available across CF failures.
//
// A CFRM policy names a preference list of candidate facilities. The
// manager brings up the first candidate as primary and — when the
// policy enables duplexing (the default) — the second as secondary,
// running every structure duplexed through a cf.Duplexed front:
// mutating commands are mirrored to both facilities, reads are served
// from the primary.
//
// The availability state machine:
//
//		simplex ──establish──▶ duplexed ──primary fails──▶ failover
//		   ▲                      │                            │
//		   └──────── re-duplex into next candidate ◀───────────┘
//
//	  - Unplanned primary failure: the first command to observe ErrCFDown
//	    (or the CF health monitor, whichever is first) promotes the
//	    secondary in-line; the command retries transparently, no data is
//	    lost, no operator acts. The manager then re-duplexes into the
//	    next candidate in the background.
//	  - Unplanned secondary failure (or replica divergence): duplexing
//	    breaks, the pair degrades to simplex on the primary, and the
//	    manager re-duplexes in the background.
//	  - Planned rebuild (Rebuild): if simplex, the manager first
//	    synchronously duplexes into a fresh candidate — all-or-nothing,
//	    the old facility stays current until every structure is copied —
//	    then switches the primary role and retires the old facility.
package cfrm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/metrics"
	"sysplex/internal/vclock"
)

// Mode selects whether structures run duplexed.
type Mode int

// Duplexing modes. The zero value enables duplexing, so a zero Policy
// gets the availability behaviour the paper motivates.
const (
	ModeDuplexed Mode = iota
	ModeSimplex
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDuplexed:
		return "duplexed"
	case ModeSimplex:
		return "simplex"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Policy is a CFRM policy: the candidate coupling facilities, in
// preference order, and how structures should run on them.
type Policy struct {
	// Candidates is the CF preference list. Empty defaults to
	// CF01..CF03. When failures exhaust the list the manager keeps
	// generating fresh facilities (CF04, CF05, ...) — the emulation's
	// stand-in for repaired hardware re-entering the policy.
	Candidates []string
	// Mode selects duplexed (default) or simplex structures.
	Mode Mode
	// SyncLatency is injected as per-command service time on every
	// facility the manager creates (experiments model the coupling
	// link; zero for functional runs).
	SyncLatency time.Duration
	// Storage bounds each facility's structure storage in bytes
	// (0 = unconstrained).
	Storage int64
	// Nodes, when non-empty, is an explicit pre-built CF fleet —
	// typically cflink clients for facilities running in other
	// processes — consumed in preference order instead of constructing
	// in-process facilities from Candidates. The fleet is fixed: once
	// failures exhaust it the manager cannot mint replacements, so the
	// pair stays simplex on the surviving node (real hardware does not
	// respawn; the Candidates path keeps its fresh-facility behaviour
	// for in-process experiments).
	Nodes []cf.Node
}

// Status is a point-in-time view of the CFRM state machine.
type Status struct {
	Primary    string
	Secondary  string // "" when simplex
	State      string // "duplexed", "syncing", or "simplex"
	Failovers  int64
	Retried    int64 // commands transparently retried across a failover
	Reduplexes int64
	Rebuilds   int64
	Failed     []string // facilities lost to failures, in name order
}

// Manager owns the CF fleet and drives the duplexing state machine.
type Manager struct {
	policy Policy
	clock  vclock.Clock
	reg    *metrics.Registry
	front  *cf.Duplexed

	mu          sync.Mutex
	facs        map[string]cf.Node
	used        map[string]bool // names ever assigned (never reused)
	failed      map[string]bool
	next        int // preference-list cursor
	reduplexing bool
	rebuilding  bool
	rebuilds    int64
}

// New builds the manager, brings up the primary (and, in duplexed mode,
// the secondary) from the policy's preference list, and returns it.
func New(policy Policy, clock vclock.Clock) (*Manager, error) {
	if clock == nil {
		clock = vclock.Real()
	}
	if len(policy.Candidates) == 0 {
		policy.Candidates = []string{"CF01", "CF02", "CF03"}
	}
	seen := make(map[string]bool, len(policy.Candidates))
	for _, n := range policy.Candidates {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("cfrm: bad candidate list %v", policy.Candidates)
		}
		seen[n] = true
	}
	m := &Manager{
		policy: policy,
		clock:  clock,
		reg:    metrics.NewRegistry(),
		facs:   make(map[string]cf.Node),
		used:   make(map[string]bool),
		failed: make(map[string]bool),
	}
	pri := m.freshNodeLocked()
	if pri == nil {
		return nil, errors.New("cfrm: policy has no usable node")
	}
	// sec stays a cf.Node (never a concrete pointer type): assigning a
	// nil *Facility here would hand NewDuplexed a non-nil interface
	// wrapping a nil pointer and the front would try to duplex into it.
	var sec cf.Node
	if policy.Mode == ModeDuplexed {
		sec = m.freshNodeLocked()
	}
	m.front = cf.NewDuplexed(clock, m.reg, pri, sec)
	m.front.OnEvent(m.handleEvent)
	if sec != nil {
		m.reg.Gauge("cfrm.duplexed").Set(1)
	}
	return m, nil
}

// freshNodeLocked returns the next CF node in preference order. With an
// explicit Policy.Nodes fleet it hands out those nodes until they run
// out, then returns nil — the fleet is finite. Otherwise it creates the
// next in-process facility from the preference list (generating names
// past its end), applying policy latency and storage. Caller holds
// m.mu, or has exclusive access during New.
func (m *Manager) freshNodeLocked() cf.Node {
	if len(m.policy.Nodes) > 0 {
		for m.next < len(m.policy.Nodes) {
			n := m.policy.Nodes[m.next]
			m.next++
			if n == nil || m.used[n.Name()] {
				continue
			}
			m.used[n.Name()] = true
			if m.policy.SyncLatency > 0 {
				n.SetSyncLatency(m.policy.SyncLatency)
			}
			m.facs[n.Name()] = n
			return n
		}
		return nil
	}
	for {
		var name string
		if m.next < len(m.policy.Candidates) {
			name = m.policy.Candidates[m.next]
		} else {
			name = fmt.Sprintf("CF%02d", m.next+1)
		}
		m.next++
		if m.used[name] {
			continue
		}
		m.used[name] = true
		f := cf.NewWithStorage(name, m.clock, m.policy.Storage)
		if m.policy.SyncLatency > 0 {
			f.SetSyncLatency(m.policy.SyncLatency)
		}
		m.facs[name] = f
		return f
	}
}

// Front returns the facility-shaped command front every structure is
// allocated through.
func (m *Manager) Front() *cf.Duplexed { return m.front }

// Primary returns the current primary CF node.
func (m *Manager) Primary() cf.Node { return m.front.Primary() }

// Secondary returns the current secondary CF node (nil when simplex).
func (m *Manager) Secondary() cf.Node { return m.front.Secondary() }

// Metrics exposes the CFRM instrumentation (shared with the front):
// cfrm.failover.count, cfrm.cmd.retried, cfrm.duplex.fanout,
// cfrm.duplex.broken, cfrm.reduplex.count, cfrm.reduplex.duration,
// cfrm.rebuild.count, and the cfrm.duplexed gauge.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Policy returns the manager's (defaulted) policy.
func (m *Manager) Policy() Policy { return m.policy }

// Facility returns a managed CF node by name (nil if unknown), for
// tests and failure injection.
func (m *Manager) Facility(name string) cf.Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.facs[name]
}

// Status reports the state machine's current shape and counters.
func (m *Manager) Status() Status {
	st := Status{
		Primary:    m.front.Primary().Name(),
		State:      m.front.State(),
		Failovers:  m.reg.Counter("cfrm.failover.count").Value(),
		Retried:    m.reg.Counter("cfrm.cmd.retried").Value(),
		Reduplexes: m.reg.Counter("cfrm.reduplex.count").Value(),
	}
	if sec := m.front.Secondary(); sec != nil {
		st.Secondary = sec.Name()
	}
	m.mu.Lock()
	st.Rebuilds = m.rebuilds
	for n := range m.failed {
		st.Failed = append(st.Failed, n)
	}
	m.mu.Unlock()
	sort.Strings(st.Failed)
	return st
}

// handleEvent reacts to duplexing transitions reported by the front.
// It runs on the failing command's goroutine, so recovery work is
// dispatched asynchronously.
func (m *Manager) handleEvent(e cf.DuplexEvent) {
	switch e.Kind {
	case cf.EventFailover, cf.EventDuplexBroken:
		m.mu.Lock()
		m.failed[e.Facility] = true
		m.mu.Unlock()
		m.reg.Gauge("cfrm.duplexed").Set(0)
		go m.ensureDuplexed()
	case cf.EventDuplexEstablished:
		m.reg.Gauge("cfrm.duplexed").Set(1)
	}
}

// ReportFailure tells CFRM a facility is unhealthy (the XCF-side CF
// health monitor and tests call this). The facility is failed if not
// already, and the state machine reacts: primary → failover, secondary
// → break duplexing; either way a background re-duplex follows.
func (m *Manager) ReportFailure(name string) {
	m.mu.Lock()
	f := m.facs[name]
	alreadyFailed := m.failed[name]
	if f != nil {
		m.failed[name] = true
	}
	m.mu.Unlock()
	if f == nil || alreadyFailed {
		return
	}
	f.Fail()
	switch {
	case m.front.Primary() == f:
		if !m.front.TryFailover() {
			// No synchronized secondary: total CF outage until Rebuild.
			go m.ensureDuplexed() // no-op unless a secondary can be built
		}
	case m.front.Secondary() == f:
		m.front.DropSecondary(f)
	}
}

// ProbeOnce polls the health of the active facilities, routing any
// newly-failed one into ReportFailure. The sysplex's XCF-style status
// monitoring calls this on its failure-detection cadence.
func (m *Manager) ProbeOnce() {
	for _, f := range []cf.Node{m.front.Primary(), m.front.Secondary()} {
		if f != nil && f.Failed() {
			m.ReportFailure(f.Name())
		}
	}
}

// ensureDuplexed re-establishes duplexing into the next healthy
// candidate. It is a no-op in simplex mode, while another establishment
// runs, or when the primary itself is down (that outage needs Rebuild).
func (m *Manager) ensureDuplexed() {
	if m.policy.Mode != ModeDuplexed {
		return
	}
	m.mu.Lock()
	if m.reduplexing {
		m.mu.Unlock()
		return
	}
	m.reduplexing = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.reduplexing = false
		m.mu.Unlock()
	}()
	for attempt := 0; attempt < 4; attempt++ {
		if m.front.Secondary() != nil {
			return
		}
		if pri := m.front.Primary(); pri == nil || pri.Failed() {
			return
		}
		if m.reduplexOnce() == nil {
			return
		}
	}
}

// reduplexOnce tries one establishment into a fresh candidate. With a
// fixed Policy.Nodes fleet the candidates can run out; the error leaves
// the pair simplex on the surviving node.
func (m *Manager) reduplexOnce() error {
	m.mu.Lock()
	target := m.freshNodeLocked()
	m.mu.Unlock()
	if target == nil {
		return errors.New("cfrm: node fleet exhausted, no re-duplex candidate")
	}
	start := m.clock.Now()
	if err := m.front.Reduplex(target); err != nil {
		m.mu.Lock()
		m.failed[target.Name()] = true
		m.mu.Unlock()
		return err
	}
	m.reg.Counter("cfrm.reduplex.count").Inc()
	m.reg.Histogram("cfrm.reduplex.duration").Observe(m.clock.Since(start))
	return nil
}

// Rebuild is the planned structure-rebuild entry point (operator moves
// structures off the current primary, e.g. for CF maintenance). The
// switchover is all-or-nothing: when simplex, the manager first copies
// every structure into a fresh facility — any failure leaves the old
// facility current and intact — and only then switches roles. The
// retired facility is never reused. In duplexed mode the manager then
// synchronously re-duplexes so the sysplex leaves the rebuild with the
// same redundancy it entered with.
func (m *Manager) Rebuild() error {
	m.mu.Lock()
	if m.rebuilding {
		m.mu.Unlock()
		return errors.New("cfrm: rebuild already in progress")
	}
	m.rebuilding = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.rebuilding = false
		m.mu.Unlock()
	}()

	if m.front.Secondary() == nil {
		if err := m.reduplexOnce(); err != nil {
			return err
		}
	}
	old, err := m.front.SwitchPrimary()
	if err != nil {
		return err
	}
	m.reg.Gauge("cfrm.duplexed").Set(0)
	m.mu.Lock()
	m.rebuilds++
	m.mu.Unlock()
	m.reg.Counter("cfrm.rebuild.count").Inc()
	_ = old // retired: stays in m.used so its name is never reallocated
	if m.policy.Mode == ModeDuplexed {
		// Planned rebuilds restore redundancy before returning; a
		// failure here leaves the sysplex simplex but serviceable.
		m.ensureDuplexed()
	}
	return nil
}

// WaitDuplexed blocks until the pair is duplexed (synchronized
// secondary installed) or the timeout elapses. Test helper for the
// background re-duplex that follows failovers.
func (m *Manager) WaitDuplexed(timeout time.Duration) error {
	deadline := m.clock.Now().Add(timeout)
	for {
		if m.front.State() == "duplexed" {
			return nil
		}
		if !m.clock.Now().Before(deadline) {
			return fmt.Errorf("cfrm: not duplexed after %v (state %s)", timeout, m.front.State())
		}
		m.clock.Sleep(time.Millisecond)
	}
}
