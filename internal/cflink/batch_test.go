package cflink

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"

	"sysplex/internal/cf"
)

func TestBatchOverWire(t *testing.T) {
	srv, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr, WithSystem("SYSA"))
	ctx := context.Background()

	ls, err := c.AllocateListStructure("WORKQ", 4, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Connect(ctx, "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	errs, err := ls.Batch(ctx, []cf.BatchCmd{
		cf.BatchListWrite("SYSA", 0, "e1", "", []byte("x"), cf.FIFO, cf.Cond{}),
		cf.BatchListWrite("SYSA", 1, "e2", "", []byte("y"), cf.FIFO, cf.Cond{}),
		cf.BatchListDelete("SYSA", "missing", cf.Cond{}),
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("writes failed: %v, %v", errs[0], errs[1])
	}
	// Sentinel identity must survive the wire in a status slot.
	if !errors.Is(errs[2], cf.ErrEntryNotFound) {
		t.Fatalf("errs[2] = %v, want ErrEntryNotFound", errs[2])
	}
	// The effects must be visible in the server's facility.
	raw, err := srv.fac.ListStructure("WORKQ")
	if err != nil {
		t.Fatal(err)
	}
	if n := raw.TotalEntries(); n != 2 {
		t.Fatalf("server entries = %d, want 2", n)
	}
}

// TestBatchOversizedFailsCleanSessionSurvives pins the pre-send size
// check: an envelope whose frame would exceed MaxFrame must fail with
// ErrFrameTooBig without poisoning the session — the next command on
// the same client must still work.
func TestBatchOversizedFailsCleanSessionSurvives(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr, WithSystem("SYSA"))
	ctx := context.Background()

	cs, err := c.AllocateCacheStructure("GBP0", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Connect(ctx, "SYSA", cf.NewBitVector(8)); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64<<10)
	cmds := make([]cf.BatchCmd, 0, 20)
	for i := 0; i < 20; i++ { // ~1.25 MiB of payload > MaxFrame
		cmds = append(cmds, cf.BatchCacheWrite("SYSA", "BLK"+string(rune('A'+i)), big, true, true, i%8))
	}
	if _, err := cs.Batch(ctx, cmds); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized batch = %v, want ErrFrameTooBig", err)
	}
	if c.Failed() {
		t.Fatal("oversized request killed the session")
	}
	if err := cs.WriteAndInvalidate(ctx, "SYSA", "BLK0", []byte("ok"), true, false, 0); err != nil {
		t.Fatalf("command after oversized batch: %v", err)
	}
}

// rawCommandConn dials the server and performs the command handshake by
// hand so tests can send hand-crafted frames.
func rawCommandConn(t *testing.T, network, addr, system string) net.Conn {
	t.Helper()
	conn, err := net.Dial(network, addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	var e encoder
	e.b = append(e.b, magic[0], magic[1], magic[2], magic[3])
	e.u8(connCommand)
	e.string(system)
	if err := writeFrame(conn, e.b); err != nil {
		t.Fatalf("handshake write: %v", err)
	}
	hello, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("handshake read: %v", err)
	}
	d := &decoder{b: hello}
	if code := d.u8(); code != codeOK {
		t.Fatalf("handshake code = %d", code)
	}
	return conn
}

// readReply reads one response frame and returns its request ID, status
// code, and the remaining payload decoder.
func readReply(t *testing.T, conn net.Conn) (uint64, uint8, *decoder) {
	t.Helper()
	payload, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	d := &decoder{b: payload}
	reqID := d.uvarint()
	code := d.u8()
	if d.err != nil {
		t.Fatalf("reply header: %v", d.err)
	}
	return reqID, code, d
}

// TestBatchTruncatedCountMalformed sends a batch frame whose subcommand
// count promises more than the payload carries. The server must answer
// with a clean error on the same request ID and keep serving.
func TestBatchTruncatedCountMalformed(t *testing.T) {
	srv, network, addr := startServer(t, "CF01")
	if _, err := srv.fac.AllocateListStructure("WORKQ", 4, 0, 100); err != nil {
		t.Fatal(err)
	}
	conn := rawCommandConn(t, network, addr, "SYSA")

	var e encoder
	e.uvarint(7) // request ID
	e.u8(opBatch)
	e.string("WORKQ")
	e.uvarint(500) // promises 500 subcommands, carries none
	if err := writeFrame(conn, e.b); err != nil {
		t.Fatal(err)
	}
	reqID, code, _ := readReply(t, conn)
	if reqID != 7 || code == codeOK {
		t.Fatalf("reply = id %d code %d, want id 7 and an error code", reqID, code)
	}

	// The session must still be alive.
	var e2 encoder
	e2.uvarint(8)
	e2.u8(opStructureNames)
	if err := writeFrame(conn, e2.b); err != nil {
		t.Fatal(err)
	}
	reqID, code, d := readReply(t, conn)
	if reqID != 8 || code != codeOK {
		t.Fatalf("follow-up reply = id %d code %d", reqID, code)
	}
	names := d.strings()
	if len(names) != 1 || names[0] != "WORKQ" {
		t.Fatalf("names = %v", names)
	}
}

// TestDuplicateRequestIDsBothAnswered sends two concurrent requests
// reusing one request ID. IDs are a client-side correlation convention,
// not server state: the server must answer each frame it got, carrying
// the ID it came with, and the session must survive.
func TestDuplicateRequestIDsBothAnswered(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	conn := rawCommandConn(t, network, addr, "SYSA")

	for i := 0; i < 2; i++ {
		var e encoder
		e.uvarint(42)
		e.u8(opStructureNames)
		if err := writeFrame(conn, e.b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		reqID, code, _ := readReply(t, conn)
		if reqID != 42 || code != codeOK {
			t.Fatalf("reply %d = id %d code %d, want id 42 codeOK", i, reqID, code)
		}
	}
	var e encoder
	e.uvarint(43)
	e.u8(opFailed)
	if err := writeFrame(conn, e.b); err != nil {
		t.Fatal(err)
	}
	reqID, code, d := readReply(t, conn)
	if reqID != 43 || code != codeOK || d.bool() {
		t.Fatalf("post-duplicate request: id %d code %d", reqID, code)
	}
}

// TestBatchCodecRoundTrip pins the wire form of every batch subcommand
// shape: encode → decode must be identity.
func TestBatchCodecRoundTrip(t *testing.T) {
	cmds := []cf.BatchCmd{
		cf.BatchLockRelease(17, "SYSA", cf.Exclusive),
		cf.BatchLockForce(3, "SYSB", cf.Share),
		cf.BatchLockSetRecord("SYSA", "ACCT/k1", cf.Exclusive),
		cf.BatchLockDelRecord("SYSA", "ACCT/k1"),
		cf.BatchCacheWrite("SYSA", "BLK7", []byte("page"), true, true, 5),
		cf.BatchCacheUnregister("SYSA", "BLK7"),
		cf.BatchCacheCastoutEnd("SYSA", "BLK7", 99),
		cf.BatchListWrite("SYSA", 2, "id1", "k1", []byte("rec"), cf.Keyed, cf.Cond{Use: true, LockIndex: 1}),
		cf.BatchListDelete("SYSA", "id1", cf.Cond{}),
	}
	var e encoder
	e.batchCmds(cmds)
	d := &decoder{b: e.b}
	got := d.batchCmds()
	if err := d.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("decoded %d cmds, want %d", len(got), len(cmds))
	}
	for i := range cmds {
		w, g := cmds[i], got[i]
		if g.Op != w.Op || g.Conn != w.Conn || g.Name != w.Name || g.Idx != w.Idx ||
			g.Mode != w.Mode || !bytes.Equal(g.Data, w.Data) || g.Cache != w.Cache ||
			g.Changed != w.Changed || g.VecIdx != w.VecIdx || g.Version != w.Version ||
			g.Key != w.Key || g.Order != w.Order || g.Cond != w.Cond {
			t.Fatalf("cmd %d: got %+v, want %+v", i, g, w)
		}
	}
}
