package cflink

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/vclock"
)

// TestStressNoPartialEffectOverWire drives a duplexed pair of REMOTE
// facilities from many concurrent writers over live TCP sockets, kills
// the primary's server mid-stream (severing connections under
// in-flight commands), and asserts the no-partial-effect guarantee
// holds across the wire:
//
//   - every write acked to a caller is present on the surviving
//     replica exactly once (zero lost committed updates);
//   - every write rejected with a context error was never sent, so it
//     is absent everywhere;
//   - writes that failed with ErrCFDown after retries are allowed to
//     be absent, but never half-applied (the entry either exists with
//     its full payload or not at all).
//
// Run under -race: the point is concurrent clients sharing one session
// while the reader, notifier, and failure paths all fire.
func TestStressNoPartialEffectOverWire(t *testing.T) {
	startTCP := func(name string) (*Server, string) {
		fac := cf.New(name, vclock.Real())
		srv := NewServer(fac)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(l)
		t.Cleanup(srv.Close)
		return srv, l.Addr().String()
	}
	srv1, addr1 := startTCP("CF01")
	_, addr2 := startTCP("CF02")
	c1 := dialT(t, "tcp", addr1, WithSystem("SYSA"))
	c2 := dialT(t, "tcp", addr2, WithSystem("SYSA"))

	clk := vclock.Real()
	d := cf.NewDuplexed(clk, nil, c1, c2)
	const nLists = 8
	lst, err := d.AllocateListStructure("MSGQ", nLists, 0, 1<<20)
	if err != nil {
		t.Fatalf("AllocateListStructure: %v", err)
	}
	if err := lst.Connect(context.Background(), "SYSA", nil); err != nil {
		t.Fatal(err)
	}

	const (
		nWriters = 8
		perW     = 150
		killAt   = nWriters * perW / 3 // primary dies inside the stream
	)
	var (
		mu        sync.Mutex
		acked     = make(map[string]bool)
		cancelled = make(map[string]bool)
		unknown   = make(map[string]bool)
		total     int
		killOnce  sync.Once
	)

	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				ctx := context.Background()
				// Every 10th op runs pre-cancelled: the client gate must
				// reject it before the frame is sent.
				pre := i%10 == 9
				if pre {
					cc, cancel := context.WithCancel(ctx)
					cancel()
					ctx = cc
				}
				err := lst.Write(ctx, "SYSA", w%nLists, id, "", []byte(id), cf.FIFO, cf.Cond{})
				mu.Lock()
				total++
				if total == killAt {
					killOnce.Do(func() { go srv1.Close() })
				}
				switch {
				case err == nil:
					acked[id] = true
				case errors.Is(err, context.Canceled):
					cancelled[id] = true
				default:
					unknown[id] = true
				}
				mu.Unlock()
				if pre && err == nil {
					t.Errorf("pre-cancelled write %s was acked", id)
				}
			}
		}(w)
	}
	wg.Wait()

	if c1.Failed() != true {
		t.Fatal("primary client still healthy after server kill")
	}
	if d.Primary() != cf.Node(c2) {
		t.Fatalf("primary after kill = %s, want CF02", d.Primary().Name())
	}

	// Allow in-flight mirrors to finish, then audit the surviving
	// replica.
	deadline := time.Now().Add(5 * time.Second)
	surviving := c2.Structure("MSGQ").(cf.List)
	for {
		if surviving.TotalEntries() >= len(acked) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	seen := make(map[string]int)
	for list := 0; list < nLists; list++ {
		for _, e := range surviving.Entries(list) {
			seen[e.ID]++
			if string(e.Data) != e.ID {
				t.Errorf("entry %s has partial payload %q", e.ID, e.Data)
			}
		}
	}
	for id := range acked {
		if seen[id] != 1 {
			t.Errorf("acked write %s present %d times on survivor, want 1", id, seen[id])
		}
	}
	for id := range cancelled {
		if seen[id] != 0 {
			t.Errorf("cancelled write %s present on survivor", id)
		}
	}
	// Unknown-outcome writes (ErrCFDown mid-flight) may or may not
	// have landed; they must not be duplicated.
	for id, n := range seen {
		if n > 1 {
			t.Errorf("entry %s duplicated %d times", id, n)
		}
		if !acked[id] && !unknown[id] {
			t.Errorf("entry %s on survivor but never acked or in-flight", id)
		}
	}
	t.Logf("acked=%d cancelled=%d unknown=%d survivor=%d",
		len(acked), len(cancelled), len(unknown), len(seen))
}

// TestStressConcurrentSessions hammers one server from several
// concurrent sessions (distinct clients) plus concurrent goroutines per
// session, with the cross-invalidate push active, then fences half the
// systems mid-run. Run under -race; the assertions are liveness plus
// session isolation (fencing one system never fails another's
// commands).
func TestStressConcurrentSessions(t *testing.T) {
	fac := cf.New("CF01", vclock.Real())
	srv := NewServer(fac)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	addr := l.Addr().String()

	if _, err := fac.AllocateCacheStructure("GBP", 1<<16); err != nil {
		t.Fatal(err)
	}

	const nSys = 6
	clients := make([]*Client, nSys)
	for i := range clients {
		clients[i] = dialT(t, "tcp", addr, WithSystem(fmt.Sprintf("SYS%d", i)))
	}

	var wg sync.WaitGroup
	errsCh := make(chan error, nSys)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			sys := fmt.Sprintf("SYS%d", i)
			cache := c.Structure("GBP").(cf.Cache)
			vec := cf.NewBitVector(64)
			ctx := context.Background()
			if err := cache.Connect(ctx, sys, vec); err != nil {
				errsCh <- fmt.Errorf("%s connect: %w", sys, err)
				return
			}
			fenced := i >= nSys/2
			var inner sync.WaitGroup
			for g := 0; g < 3; g++ {
				inner.Add(1)
				go func(g int) {
					defer inner.Done()
					for k := 0; k < 100; k++ {
						block := fmt.Sprintf("blk-%d", k%16)
						if _, err := cache.ReadAndRegister(ctx, sys, block, k%64); err != nil {
							if fenced && errors.Is(err, cf.ErrCFDown) {
								return // severed as designed
							}
							errsCh <- fmt.Errorf("%s read: %w", sys, err)
							return
						}
						if err := cache.WriteAndInvalidate(ctx, sys, block, []byte(block), true, true, k%64); err != nil {
							if fenced && errors.Is(err, cf.ErrCFDown) {
								return
							}
							errsCh <- fmt.Errorf("%s write: %w", sys, err)
							return
						}
					}
				}(g)
			}
			if fenced && i == nSys-1 {
				// One sick system gets fenced by the first healthy one
				// while everyone is mid-stream.
				srv.Fence(sys)
			}
			inner.Wait()
		}(i, c)
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Error(err)
	}
	// Healthy systems must still be live end-to-end.
	for i := 0; i < nSys/2; i++ {
		if clients[i].Failed() {
			t.Errorf("healthy SYS%d severed", i)
		}
	}
}
