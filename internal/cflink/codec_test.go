package cflink

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"sysplex/internal/cf"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1000), make([]byte, MaxFrame)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
		got, err := readFrame(&buf, nil)
		if err != nil {
			t.Fatalf("readFrame(%d bytes): %v", len(p), err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame round trip: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameTooBig(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("writeFrame oversized: err = %v, want ErrFrameTooBig", err)
	}
	// A corrupt length prefix claiming more than MaxFrame must fail
	// before allocating the claimed size.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hdr), nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("readFrame oversized prefix: err = %v, want ErrFrameTooBig", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello, coupling facility")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		if _, err := readFrame(bytes.NewReader(whole[:cut]), nil); err == nil {
			t.Fatalf("readFrame of %d/%d bytes succeeded, want error", cut, len(whole))
		} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("readFrame of %d/%d bytes: unexpected error %v", cut, len(whole), err)
		}
	}
}

func TestScalarRoundTrip(t *testing.T) {
	var e encoder
	e.u8(7)
	e.bool(true)
	e.bool(false)
	e.uvarint(0)
	e.uvarint(1 << 62)
	e.varint(-1234567)
	e.int(42)
	e.string("")
	e.string("IGWLOCK00")
	e.bytes(nil)
	e.bytes([]byte{1, 2, 3})
	e.strings([]string{"SYSA", "SYSB"})

	d := &decoder{b: e.b}
	if got := d.u8(); got != 7 {
		t.Fatalf("u8 = %d", got)
	}
	if !d.bool() || d.bool() {
		t.Fatal("bool round trip")
	}
	if got := d.uvarint(); got != 0 {
		t.Fatalf("uvarint(0) = %d", got)
	}
	if got := d.uvarint(); got != 1<<62 {
		t.Fatalf("uvarint(1<<62) = %d", got)
	}
	if got := d.varint(); got != -1234567 {
		t.Fatalf("varint = %d", got)
	}
	if got := d.int(); got != 42 {
		t.Fatalf("int = %d", got)
	}
	if got := d.string(); got != "" {
		t.Fatalf("string(empty) = %q", got)
	}
	if got := d.string(); got != "IGWLOCK00" {
		t.Fatalf("string = %q", got)
	}
	if got := d.bytes(); got != nil {
		t.Fatalf("bytes(nil) = %v", got)
	}
	if got := d.bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	ss := d.strings()
	if len(ss) != 2 || ss[0] != "SYSA" || ss[1] != "SYSB" {
		t.Fatalf("strings = %v", ss)
	}
	if err := d.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	recs := []cf.LockRecord{
		{Connector: "SYSA", Resource: "DB.T1.R9", Mode: cf.Exclusive},
		{Connector: "SYSB", Resource: "DB.T1.R10", Mode: cf.Share},
	}
	entries := []cf.ListEntry{
		{ID: "msg-1", Key: "k1", Data: []byte("payload"), Adjunct: "adj", List: 3},
		{ID: "msg-2", List: 0},
	}
	cond := cf.Cond{Use: true, LockIndex: 5}

	var e encoder
	e.lockRecords(recs)
	e.listEntries(entries)
	e.cond(cond)

	d := &decoder{b: e.b}
	gotRecs := d.lockRecords()
	gotEntries := d.listEntries()
	gotCond := d.cond()
	if err := d.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if fmt.Sprint(gotRecs) != fmt.Sprint(recs) {
		t.Fatalf("lockRecords = %v, want %v", gotRecs, recs)
	}
	if len(gotEntries) != len(entries) {
		t.Fatalf("listEntries len = %d", len(gotEntries))
	}
	for i := range entries {
		if gotEntries[i].ID != entries[i].ID || gotEntries[i].Key != entries[i].Key ||
			!bytes.Equal(gotEntries[i].Data, entries[i].Data) ||
			gotEntries[i].Adjunct != entries[i].Adjunct || gotEntries[i].List != entries[i].List {
			t.Fatalf("listEntries[%d] = %+v, want %+v", i, gotEntries[i], entries[i])
		}
	}
	if gotCond != cond {
		t.Fatalf("cond = %+v, want %+v", gotCond, cond)
	}
}

func TestDecoderTruncation(t *testing.T) {
	// Build a payload of every field kind, then decode every prefix of
	// it: each must fail cleanly via finish(), never panic, never read
	// out of bounds.
	var e encoder
	e.string("structure")
	e.lockRecords([]cf.LockRecord{{Connector: "SYSA", Resource: "R", Mode: cf.Share}})
	e.listEntries([]cf.ListEntry{{ID: "x", Data: []byte("d")}})
	e.strings([]string{"a", "b"})
	e.varint(-9)
	whole := e.b
	for cut := 0; cut < len(whole); cut++ {
		d := &decoder{b: whole[:cut]}
		d.string()
		d.lockRecords()
		d.listEntries()
		d.strings()
		d.varint()
		if err := d.finish(); err == nil {
			t.Fatalf("decode of %d/%d bytes finished clean, want error", cut, len(whole))
		}
	}
}

func TestDecoderCountOverflow(t *testing.T) {
	// A corrupt element count larger than the remaining payload must be
	// rejected before allocation.
	var e encoder
	e.uvarint(1 << 40)
	for _, dec := range []func(d *decoder){
		func(d *decoder) { d.strings() },
		func(d *decoder) { d.lockRecords() },
		func(d *decoder) { d.listEntries() },
		func(d *decoder) { d.bytes() },
		func(d *decoder) { d.string() },
	} {
		d := &decoder{b: e.b}
		dec(d)
		if d.err == nil {
			t.Fatal("oversized count accepted")
		}
	}
}

func TestErrCodeRoundTrip(t *testing.T) {
	for _, sentinel := range codeSentinels[1:] {
		code, detail := encodeErr(fmt.Errorf("wrapped: %w", sentinel))
		got := decodeErr(code, detail)
		if !errors.Is(got, sentinel) {
			t.Fatalf("decodeErr(%d) = %v, want Is(%v)", code, got, sentinel)
		}
		if got.Error() != "wrapped: "+sentinel.Error() {
			t.Fatalf("decodeErr detail = %q", got.Error())
		}
	}
	// Bare sentinel: comes back as the sentinel itself.
	code, detail := encodeErr(cf.ErrCFDown)
	if got := decodeErr(code, detail); got != cf.ErrCFDown {
		t.Fatalf("bare sentinel decode = %v", got)
	}
	// Unknown error: detail-only.
	code, detail = encodeErr(errors.New("disk on fire"))
	if code != codeOther {
		t.Fatalf("unknown error code = %d", code)
	}
	if got := decodeErr(code, detail); got.Error() != "disk on fire" {
		t.Fatalf("unknown error detail = %q", got.Error())
	}
}
