package cflink

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sysplex/internal/cf"
)

// FuzzDecoder throws arbitrary bytes at every decode shape the protocol
// uses (request headers, each composite field, response envelopes). The
// invariant is total safety: malformed, truncated, and corrupt payloads
// must come back as errors — never a panic, never an out-of-bounds
// read, never a giant allocation from a forged element count.
func FuzzDecoder(f *testing.F) {
	var seed encoder
	seed.uvarint(12)
	seed.u8(opListWrite)
	seed.string("MSGQ")
	seed.string("SYSA")
	seed.int(3)
	seed.string("id-1")
	seed.string("key")
	seed.bytes([]byte("data"))
	seed.int(int(cf.Keyed))
	seed.cond(cf.Cond{Use: true, LockIndex: 1})
	f.Add(seed.b)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	var counts encoder
	counts.uvarint(1 << 50)
	f.Add(counts.b)
	// Batch envelope seeds: a well-formed two-subcommand batch, the
	// same one truncated mid-subcommand, and a forged count that
	// promises more subcommands than the payload carries (the classic
	// allocation-bomb shape the decoder must refuse).
	var bseed encoder
	bseed.batchCmds([]cf.BatchCmd{
		cf.BatchLockRelease(5, "SYSA", cf.Exclusive),
		cf.BatchListWrite("SYSA", 1, "id", "key", []byte("rec"), cf.Keyed, cf.Cond{Use: true}),
	})
	f.Add(bseed.b)
	f.Add(bseed.b[:len(bseed.b)/2])
	var bcount encoder
	bcount.uvarint(uint64(cf.MaxBatchOps) + 1)
	bcount.u8(uint8(cf.BatchOpLockRelease))
	f.Add(bcount.b)
	var berrs encoder
	berrs.batchErrs([]error{nil, cf.ErrEntryNotFound, cf.ErrCFDown})
	f.Add(berrs.b)

	f.Fuzz(func(t *testing.T, payload []byte) {
		// Request-header shape.
		d := &decoder{b: payload}
		d.uvarint()
		d.u8()
		d.string()
		_ = d.finish()

		// Every composite decoder.
		for _, dec := range []func(d *decoder){
			func(d *decoder) { d.strings() },
			func(d *decoder) { d.lockRecords() },
			func(d *decoder) { d.listEntries() },
			func(d *decoder) { d.listEntry() },
			func(d *decoder) { d.lockRecord() },
			func(d *decoder) { d.cond() },
			func(d *decoder) { d.bytes() },
			func(d *decoder) { d.varint(); d.uvarint(); d.bool() },
			func(d *decoder) {
				if cmds := d.batchCmds(); len(cmds) > cf.MaxBatchOps {
					t.Fatalf("batchCmds decoded %d subcommands > MaxBatchOps", len(cmds))
				}
			},
			func(d *decoder) { d.batchCmd() },
			func(d *decoder) {
				if errs := d.batchErrs(); len(errs) > cf.MaxBatchOps {
					t.Fatalf("batchErrs decoded %d statuses > MaxBatchOps", len(errs))
				}
			},
		} {
			dd := &decoder{b: payload}
			dec(dd)
			_ = dd.finish()
		}

		// Response-envelope shape: code then either detail or results.
		rd := &decoder{b: payload}
		code := rd.u8()
		if code != codeOK {
			detail := rd.string()
			if rd.err == nil {
				_ = decodeErr(code, detail)
			}
		} else {
			rd.bytes()
			rd.bool()
			rd.uvarint()
			_ = rd.finish()
		}
	})
}

// FuzzFrame feeds arbitrary byte streams to the frame reader: any input
// either yields a bounded payload or a clean error.
func FuzzFrame(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, []byte("payload"))
	f.Add(good.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 5, 'a', 'b'})

	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := readFrame(bytes.NewReader(stream), nil)
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame returned %d bytes > MaxFrame", len(payload))
		}
		if len(stream) >= 4 {
			want := binary.BigEndian.Uint32(stream[:4])
			if uint32(len(payload)) != want {
				t.Fatalf("payload %d bytes, prefix says %d", len(payload), want)
			}
		}
	})
}

// FuzzRoundTrip checks the encode→decode identity on fuzzer-chosen
// field values: whatever goes in must come out, bit-exact.
func FuzzRoundTrip(f *testing.F) {
	f.Add("conn", "res.key", int64(2), []byte("block"), true, int64(7))
	f.Add("", "", int64(-1), []byte{}, false, int64(0))

	f.Fuzz(func(t *testing.T, s1, s2 string, i1 int64, b []byte, flag bool, i2 int64) {
		var e encoder
		e.string(s1)
		e.string(s2)
		e.varint(i1)
		e.bytes(b)
		e.bool(flag)
		e.uvarint(uint64(i2))
		e.lockRecord(cf.LockRecord{Connector: s1, Resource: s2, Mode: cf.LockMode(i1)})
		e.listEntry(cf.ListEntry{ID: s1, Key: s2, Data: b, Adjunct: s2, List: int(i1)})

		d := &decoder{b: e.b}
		if got := d.string(); got != s1 {
			t.Fatalf("string = %q, want %q", got, s1)
		}
		if got := d.string(); got != s2 {
			t.Fatalf("string = %q, want %q", got, s2)
		}
		if got := d.varint(); got != i1 {
			t.Fatalf("varint = %d, want %d", got, i1)
		}
		got := d.bytes()
		if !bytes.Equal(got, b) && !(len(got) == 0 && len(b) == 0) {
			t.Fatalf("bytes = %v, want %v", got, b)
		}
		if d.bool() != flag {
			t.Fatal("bool mismatch")
		}
		if got := d.uvarint(); got != uint64(i2) {
			t.Fatalf("uvarint = %d, want %d", got, uint64(i2))
		}
		rec := d.lockRecord()
		if rec.Connector != s1 || rec.Resource != s2 || rec.Mode != cf.LockMode(i1) {
			t.Fatalf("lockRecord = %+v", rec)
		}
		le := d.listEntry()
		if le.ID != s1 || le.Key != s2 || le.Adjunct != s2 || le.List != int(i1) {
			t.Fatalf("listEntry = %+v", le)
		}
		if err := d.finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
	})
}
