package cflink

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/cfrm"
	"sysplex/internal/vclock"
)

// startServer serves a fresh facility named name on a unix socket in
// the test's temp dir and returns the server plus dial coordinates.
func startServer(t *testing.T, name string) (*Server, string, string) {
	t.Helper()
	fac := cf.New(name, vclock.Real())
	srv := NewServer(fac)
	addr := filepath.Join(t.TempDir(), "cf.sock")
	l, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return srv, "unix", addr
}

func dialT(t *testing.T, network, addr string, opts ...Option) *Client {
	t.Helper()
	c, err := Dial(network, addr, opts...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitFor polls cond until true or the deadline; the notification
// connection is asynchronous by design, so vector assertions wait.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHandshake(t *testing.T) {
	_, network, addr := startServer(t, "CF77")
	c := dialT(t, network, addr, WithSystem("SYSA"))
	if c.Name() != "CF77" {
		t.Fatalf("Name() = %q, want CF77 (from handshake)", c.Name())
	}
	if c.System() != "SYSA" {
		t.Fatalf("System() = %q", c.System())
	}
	if c.Failed() {
		t.Fatal("fresh client reports Failed")
	}
}

func TestLockOverWire(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr, WithSystem("SYSA"))
	ctx := context.Background()

	lk, err := c.AllocateLockStructure("IGWLOCK00", 64)
	if err != nil {
		t.Fatalf("AllocateLockStructure: %v", err)
	}
	if lk.Entries() != 64 {
		t.Fatalf("Entries() = %d", lk.Entries())
	}
	if err := lk.Connect(ctx, "SYSA"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := lk.Connect(ctx, "SYSB"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	idx := lk.HashResource("DB.T1.ROW9")
	res, err := lk.Obtain(ctx, idx, "SYSA", cf.Exclusive)
	if err != nil || !res.Granted {
		t.Fatalf("Obtain = %+v, %v", res, err)
	}
	// Contention comes back with the holder list for selective
	// negotiation, across the wire.
	res, err = lk.Obtain(ctx, idx, "SYSB", cf.Exclusive)
	if err != nil {
		t.Fatalf("contended Obtain: %v", err)
	}
	if res.Granted || len(res.Holders) != 1 || res.Holders[0] != "SYSA" {
		t.Fatalf("contended Obtain = %+v, want holders [SYSA]", res)
	}
	if err := lk.SetRecord(ctx, "SYSA", "DB.T1.ROW9", cf.Exclusive); err != nil {
		t.Fatalf("SetRecord: %v", err)
	}
	recs, err := lk.Records(ctx, "SYSA")
	if err != nil || len(recs) != 1 || recs[0].Resource != "DB.T1.ROW9" {
		t.Fatalf("Records = %+v, %v", recs, err)
	}
	if err := lk.Release(ctx, idx, "SYSA", cf.Exclusive); err != nil {
		t.Fatalf("Release: %v", err)
	}

	// HashResource must agree with the server-side structure: obtain on
	// the locally computed index and verify interest shows up there.
	share, excl, err := lk.Interest(idx, "SYSB")
	if err != nil || share != 0 || excl != 0 {
		t.Fatalf("Interest = %d/%d, %v", share, excl, err)
	}
}

func TestErrorSentinelsOverWire(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr)
	ctx := context.Background()

	if _, err := c.AllocateLockStructure("S1", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateLockStructure("S1", 8); !errors.Is(err, cf.ErrExists) {
		t.Fatalf("duplicate alloc err = %v, want ErrExists", err)
	}
	lst, err := c.AllocateListStructure("Q", 4, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Connect(ctx, "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := lst.Read(ctx, "SYSA", "nope", cf.Cond{}); !errors.Is(err, cf.ErrEntryNotFound) {
		t.Fatalf("missing entry err = %v, want ErrEntryNotFound", err)
	}
	if _, err := lst.Pop(ctx, "nobody", 0, cf.Cond{}); !errors.Is(err, cf.ErrNotConnected) {
		t.Fatalf("unconnected err = %v, want ErrNotConnected", err)
	}
	// Model mismatch surfaces on the command, not the handle.
	rl := &remoteLock{remoteStruct{c: c, name: "Q", model: cf.LockModel, size: 8}}
	if err := rl.Connect(ctx, "SYSA"); !errors.Is(err, cf.ErrWrongModel) {
		t.Fatalf("wrong model err = %v, want ErrWrongModel", err)
	}

	// Remote failure injection: the CF dies, the link stays up, and
	// the sentinel crosses the wire.
	c.Fail()
	if !c.Failed() {
		t.Fatal("Failed() = false after Fail()")
	}
	if err := lst.Connect(ctx, "SYSB", nil); !errors.Is(err, cf.ErrCFDown) {
		t.Fatalf("command on failed CF err = %v, want ErrCFDown", err)
	}
}

func TestContextGateNeverSendsCancelled(t *testing.T) {
	srv, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr)
	lst, err := c.AllocateListStructure("Q", 1, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Connect(context.Background(), "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := lst.Write(ctx, "SYSA", 0, "doomed", "", nil, cf.FIFO, cf.Cond{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Write err = %v, want context.Canceled", err)
	}
	// The command was never sent, so the server must not have it.
	if n := srv.Facility().Structure("Q").(cf.List).TotalEntries(); n != 0 {
		t.Fatalf("cancelled write reached the server: %d entries", n)
	}
}

func TestCacheCrossInvalidateOverWire(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	cA := dialT(t, network, addr, WithSystem("SYSA"))
	cB := dialT(t, network, addr, WithSystem("SYSB"))
	ctx := context.Background()

	if _, err := cA.AllocateCacheStructure("DB2GBP0", 1024); err != nil {
		t.Fatal(err)
	}
	cacheA := cA.Structure("DB2GBP0").(cf.Cache)
	cacheB := cB.Structure("DB2GBP0").(cf.Cache)

	vecA := cf.NewBitVector(16)
	vecB := cf.NewBitVector(16)
	if err := cacheA.Connect(ctx, "SYSA", vecA); err != nil {
		t.Fatal(err)
	}
	if err := cacheB.Connect(ctx, "SYSB", vecB); err != nil {
		t.Fatal(err)
	}

	// SYSB registers interest in a block: its local validity bit is
	// set by a pushed notification, not a command round trip.
	if _, err := cacheB.ReadAndRegister(ctx, "SYSB", "page7", 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "SYSB validity bit set", func() bool { return vecB.Test(3) })

	// SYSA writes the block: cross-invalidate clears SYSB's bit in
	// SYSB's process, with no software action on SYSB.
	if err := cacheA.WriteAndInvalidate(ctx, "SYSA", "page7", []byte("v2"), true, true, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "SYSB cross-invalidate", func() bool { return !vecB.Test(3) })
	waitFor(t, "SYSA validity bit set", func() bool { return vecA.Test(1) })

	// SYSB re-reads: hit on the globally cached image.
	res, err := cacheB.ReadAndRegister(ctx, "SYSB", "page7", 3)
	if err != nil || !res.Hit || string(res.Data) != "v2" {
		t.Fatalf("re-read = %+v, %v, want hit v2", res, err)
	}
}

func TestListTransitionOverWire(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr, WithSystem("SYSA"))
	ctx := context.Background()

	lst, err := c.AllocateListStructure("MSGQ", 8, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Lists() != 8 {
		t.Fatalf("Lists() = %d", lst.Lists())
	}
	vec := cf.NewBitVector(8)
	if err := lst.Connect(ctx, "SYSA", vec); err != nil {
		t.Fatal(err)
	}
	if err := lst.Monitor(ctx, "SYSA", 5, 5); err != nil {
		t.Fatal(err)
	}
	if vec.Test(5) {
		t.Fatal("bit set before any entry")
	}
	if err := lst.Write(ctx, "SYSA", 5, "m1", "", []byte("hi"), cf.FIFO, cf.Cond{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "list-transition bit", func() bool { return vec.Test(5) })

	le, err := lst.Pop(ctx, "SYSA", 5, cf.Cond{})
	if err != nil || le.ID != "m1" || string(le.Data) != "hi" {
		t.Fatalf("Pop = %+v, %v", le, err)
	}
}

func TestFenceSeversAndRefuses(t *testing.T) {
	srv, network, addr := startServer(t, "CF01")
	sick := dialT(t, network, addr, WithSystem("SYSB"))
	healthy := dialT(t, network, addr, WithSystem("SYSA"))
	ctx := context.Background()

	lst, err := healthy.AllocateListStructure("Q", 1, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Connect(ctx, "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	sickQ := sick.Structure("Q").(cf.List)
	if err := sickQ.Connect(ctx, "SYSB", nil); err != nil {
		t.Fatal(err)
	}

	// The healthy peer fences the sick system: its link is severed, so
	// to SYSB the CF is simply down.
	if err := healthy.Fence("SYSB"); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	waitFor(t, "sick client severed", sick.Failed)
	if err := sickQ.Write(ctx, "SYSB", 0, "x", "", nil, cf.FIFO, cf.Cond{}); !errors.Is(err, cf.ErrCFDown) {
		t.Fatalf("fenced write err = %v, want ErrCFDown", err)
	}
	// Reconnect under the fenced name is refused at handshake.
	if _, err := Dial(network, addr, WithSystem("SYSB")); err == nil {
		t.Fatal("fenced system re-dialled successfully")
	}
	if !srv.Fenced("SYSB") {
		t.Fatal("server does not report SYSB fenced")
	}
	// The healthy system is untouched.
	if err := lst.Write(ctx, "SYSA", 0, "y", "", nil, cf.FIFO, cf.Cond{}); err != nil {
		t.Fatalf("healthy write after fence: %v", err)
	}
}

func TestDuplexedOverWire(t *testing.T) {
	srv1, net1, addr1 := startServer(t, "CF01")
	_, net2, addr2 := startServer(t, "CF02")
	c1 := dialT(t, net1, addr1, WithSystem("SYSA"))
	c2 := dialT(t, net2, addr2, WithSystem("SYSA"))
	ctx := context.Background()

	d := cf.NewDuplexed(vclock.Real(), nil, c1, c2)
	lst, err := d.AllocateListStructure("MSGQ", 4, 0, 1024)
	if err != nil {
		t.Fatalf("AllocateListStructure: %v", err)
	}
	if err := lst.Connect(ctx, "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("pre-%d", i)
		if err := lst.Write(ctx, "SYSA", i%4, id, "", []byte(id), cf.FIFO, cf.Cond{}); err != nil {
			t.Fatalf("Write %s: %v", id, err)
		}
	}

	// Kill the primary's *process-side server*: connections sever, the
	// client reports ErrCFDown, and the front fails over in-line.
	srv1.Close()
	for i := 10; i < 20; i++ {
		id := fmt.Sprintf("post-%d", i)
		if err := lst.Write(ctx, "SYSA", i%4, id, "", []byte(id), cf.FIFO, cf.Cond{}); err != nil {
			t.Fatalf("Write %s after primary kill: %v", id, err)
		}
	}
	if d.Primary() != cf.Node(c2) {
		t.Fatalf("primary after failover = %v, want CF02 client", d.Primary().Name())
	}
	if got := d.State(); got != "simplex" {
		t.Fatalf("State() = %q after failover, want simplex", got)
	}

	// Zero lost committed updates: every acked write is on the
	// surviving replica exactly once.
	surviving := c2.Structure("MSGQ").(cf.List)
	if n := surviving.TotalEntries(); n != 20 {
		t.Fatalf("surviving replica has %d entries, want 20", n)
	}
}

func TestCfrmPolicyWithRemoteFleet(t *testing.T) {
	srv1, net1, addr1 := startServer(t, "CF01")
	_, net2, addr2 := startServer(t, "CF02")
	c1 := dialT(t, net1, addr1, WithSystem("SYSA"))
	c2 := dialT(t, net2, addr2, WithSystem("SYSA"))
	ctx := context.Background()

	mgr, err := cfrm.New(cfrm.Policy{Nodes: []cf.Node{c1, c2}}, vclock.Real())
	if err != nil {
		t.Fatalf("cfrm.New: %v", err)
	}
	if got := mgr.Primary().Name(); got != "CF01" {
		t.Fatalf("primary = %q", got)
	}
	if got := mgr.Status().State; got != "duplexed" {
		t.Fatalf("state = %q, want duplexed", got)
	}
	lst, err := mgr.Front().AllocateListStructure("LOGQ", 2, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Connect(ctx, "SYSA", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := lst.Write(ctx, "SYSA", 0, fmt.Sprintf("e%d", i), "", nil, cf.FIFO, cf.Cond{}); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()
	// Commands keep working across the failover; the fixed remote
	// fleet is now exhausted, so the pair stays simplex on CF02.
	for i := 5; i < 10; i++ {
		if err := lst.Write(ctx, "SYSA", 0, fmt.Sprintf("e%d", i), "", nil, cf.FIFO, cf.Cond{}); err != nil {
			t.Fatalf("write after failover: %v", err)
		}
	}
	if got := mgr.Primary().Name(); got != "CF02" {
		t.Fatalf("primary after failover = %q", got)
	}
	waitFor(t, "state settles simplex", func() bool { return mgr.Status().State == "simplex" })
	if n := c2.Structure("LOGQ").(cf.List).TotalEntries(); n != 10 {
		t.Fatalf("surviving replica has %d entries, want 10", n)
	}
}

func TestTCPLoopback(t *testing.T) {
	fac := cf.New("CF01", vclock.Real())
	srv := NewServer(fac)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen tcp: %v", err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c := dialT(t, "tcp", l.Addr().String(), WithSystem("SYSA"))
	lk, err := c.AllocateLockStructure("L", 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := lk.Connect(ctx, "SYSA"); err != nil {
		t.Fatal(err)
	}
	res, err := lk.Obtain(ctx, 3, "SYSA", cf.Share)
	if err != nil || !res.Granted {
		t.Fatalf("Obtain over TCP = %+v, %v", res, err)
	}
}

func TestStructureNamesAndDeallocate(t *testing.T) {
	_, network, addr := startServer(t, "CF01")
	c := dialT(t, network, addr)
	if _, err := c.AllocateLockStructure("A", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateListStructure("B", 2, 0, 64); err != nil {
		t.Fatal(err)
	}
	names := c.StructureNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("StructureNames = %v", names)
	}
	if c.Structure("A") == nil || c.Structure("A").ReplicaModel() != cf.LockModel {
		t.Fatal("Structure(A) wrong")
	}
	if c.Structure("missing") != nil {
		t.Fatal("Structure(missing) non-nil")
	}
	if err := c.Deallocate("A"); err != nil {
		t.Fatal(err)
	}
	if errors.Is(c.Deallocate("A"), cf.ErrNoStructure) == false {
		t.Fatal("double Deallocate should be ErrNoStructure")
	}
	// Clone across the link is architecturally unsupported.
	if _, err := c.Structure("B").ReplicaCloneInto(cf.New("CFX", vclock.Real())); !errors.Is(err, cf.ErrCloneUnsupported) {
		t.Fatalf("ReplicaCloneInto err = %v, want ErrCloneUnsupported", err)
	}
}
