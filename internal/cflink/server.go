package cflink

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sysplex/internal/cf"
)

// handshakeTimeout bounds how long a fresh connection may take to send
// its handshake frame before the server drops it.
const handshakeTimeout = 5 * time.Second

// notifyQueueLen buffers bit-vector flips awaiting the session's
// notification connection. The push never blocks — it fires on the
// flipping command's goroutine while CF structure locks are held — so a
// client that stops draining overflows the queue and is severed: a
// system too sick to take its cross-invalidates must not stall the CF
// (the paper's fencing posture, applied to the link).
const notifyQueueLen = 4096

// errFenced rejects connections from a fenced system.
var errFenced = errors.New("cflink: system is fenced")

// Server serves one in-process cf.Facility over a byte-stream
// transport: the CF side of the coupling link. Sessions are identified
// by the system name the client declares at handshake; Fence severs a
// system's connections and refuses its reconnects — I/O fencing as
// actual link severing rather than a flag.
type Server struct {
	fac *cf.Facility

	mu        sync.Mutex
	listeners map[net.Listener]bool
	sessions  map[uint64]*session
	fenced    map[string]bool
	nextSess  uint64
	closed    bool
}

// NewServer wraps fac for serving. The facility keeps working
// in-process too: a server is a view onto it, not an ownership
// transfer.
func NewServer(fac *cf.Facility) *Server {
	return &Server{
		fac:       fac,
		listeners: make(map[net.Listener]bool),
		sessions:  make(map[uint64]*session),
		fenced:    make(map[string]bool),
	}
}

// Facility returns the served facility.
func (s *Server) Facility() *cf.Facility { return s.fac }

// Serve accepts sessions on l until the listener fails or the server is
// closed. It blocks; run it on its own goroutine. Multiple listeners
// (e.g. a unix socket and a TCP port) may serve one facility.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("cflink: server closed")
	}
	s.listeners[l] = true
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handshake(conn)
	}
}

// Close severs every session and stops every listener.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	s.listeners = make(map[net.Listener]bool)
	sess := make([]*session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		sess = append(sess, ses)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, ses := range sess {
		ses.close()
	}
}

// Fence cuts system off from this CF: its sessions' connections are
// closed mid-whatever-they-were-doing and future handshakes declaring
// that name are refused. This is the transport's I/O fencing — the sick
// system cannot reach shared state through this CF at all, rather than
// being trusted to honour a flag.
func (s *Server) Fence(system string) {
	if system == "" {
		return
	}
	s.mu.Lock()
	s.fenced[system] = true
	var victims []*session
	for _, ses := range s.sessions {
		if ses.system == system {
			victims = append(victims, ses)
		}
	}
	s.mu.Unlock()
	for _, ses := range victims {
		ses.close()
	}
}

// Fenced reports whether system is fenced.
func (s *Server) Fenced(system string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced[system]
}

// handshake classifies a fresh connection (command vs notification) and
// either starts a session or attaches the notification side to one.
func (s *Server) handshake(conn net.Conn) {
	// The handshake read is bounded by real time: this is link-level
	// protocol hygiene against half-open peers, not sysplex timing, so
	// the simulated clock does not apply.
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout)) // lintwall: link handshake bound, not sysplex time
	payload, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	d := &decoder{b: payload}
	var m [4]byte
	m[0], m[1], m[2], m[3] = d.u8(), d.u8(), d.u8(), d.u8()
	kind := d.u8()
	if d.err != nil || m != magic {
		conn.Close()
		return
	}
	switch kind {
	case connCommand:
		system := d.string()
		if d.finish() != nil {
			conn.Close()
			return
		}
		s.startSession(conn, system)
	case connNotify:
		token := d.uvarint()
		if d.finish() != nil {
			conn.Close()
			return
		}
		s.attachNotify(conn, token)
	default:
		conn.Close()
	}
}

// startSession registers a command connection as a new session and
// serves its requests.
func (s *Server) startSession(conn net.Conn, system string) {
	s.mu.Lock()
	if s.closed || (system != "" && s.fenced[system]) {
		s.mu.Unlock()
		var e encoder
		code, detail := encodeErr(errFenced)
		e.u8(code)
		e.string(detail)
		writeFrame(conn, e.b)
		conn.Close()
		return
	}
	s.nextSess++
	ses := &session{
		srv:      s,
		id:       s.nextSess,
		system:   system,
		cmd:      conn,
		notifyCh: make(chan notifyFrame, notifyQueueLen),
		vectors:  make(map[uint64]*cf.BitVector),
	}
	s.sessions[ses.id] = ses
	s.mu.Unlock()

	var e encoder
	e.u8(codeOK)
	e.string(s.fac.Name())
	e.uvarint(ses.id)
	if writeFrame(conn, e.b) != nil {
		ses.close()
		return
	}
	go ses.serve()
}

// attachNotify binds a notification connection to the session the token
// names and starts the push writer.
func (s *Server) attachNotify(conn net.Conn, token uint64) {
	s.mu.Lock()
	ses := s.sessions[token]
	s.mu.Unlock()
	if ses == nil {
		conn.Close()
		return
	}
	ses.nmu.Lock()
	if ses.notifyConn != nil {
		ses.nmu.Unlock()
		conn.Close()
		return
	}
	ses.notifyConn = conn
	ses.nmu.Unlock()
	var e encoder
	e.u8(codeOK)
	if writeFrame(conn, e.b) != nil {
		ses.close()
		return
	}
	go ses.notifyWriter(conn)
}

// drop removes ses from the server's tables.
func (s *Server) drop(ses *session) {
	s.mu.Lock()
	delete(s.sessions, ses.id)
	s.mu.Unlock()
}

// notifyFrame is one queued bit-vector flip. bit -1 encodes ClearAll.
type notifyFrame struct {
	vec uint64
	bit int64
	set bool
}

// session is one client's pair of connections plus its shadow bit
// vectors.
type session struct {
	srv    *Server
	id     uint64
	system string

	cmd net.Conn
	wmu sync.Mutex // serializes response frames on cmd

	nmu        sync.Mutex
	notifyConn net.Conn
	notifyCh   chan notifyFrame

	vmu     sync.Mutex
	vectors map[uint64]*cf.BitVector

	closeOnce sync.Once
}

// close severs both connections and forgets the session. Safe to call
// from any goroutine, any number of times.
func (ses *session) close() {
	ses.closeOnce.Do(func() {
		ses.srv.drop(ses)
		ses.cmd.Close()
		ses.nmu.Lock()
		nc := ses.notifyConn
		ses.nmu.Unlock()
		if nc != nil {
			nc.Close()
		}
		// Detach the shadow vectors' hooks so structure commands stop
		// paying for a dead session's pushes.
		ses.vmu.Lock()
		for _, v := range ses.vectors {
			v.SetNotify(nil)
		}
		ses.vmu.Unlock()
	})
}

// serve reads request frames off the command connection, dispatching
// each on its own goroutine (commands may sleep under injected link
// latency; a serial loop would serialize the whole system behind one
// slow command). Responses are matched by request ID, so completing out
// of order is fine.
func (ses *session) serve() {
	defer ses.close()
	for {
		// A fresh buffer per frame: the payload escapes to the handler
		// goroutine.
		payload, err := readFrame(ses.cmd, nil)
		if err != nil {
			return
		}
		d := &decoder{b: payload}
		reqID := d.uvarint()
		op := d.u8()
		if d.err != nil {
			// No usable request ID to answer on — protocol is broken.
			return
		}
		go ses.dispatch(reqID, op, d)
	}
}

// reply sends a success response; body (may be nil) appends the result
// fields.
func (ses *session) reply(reqID uint64, body func(e *encoder)) {
	var e encoder
	e.uvarint(reqID)
	e.u8(codeOK)
	if body != nil {
		body(&e)
	}
	ses.wmu.Lock()
	err := writeFrame(ses.cmd, e.b)
	ses.wmu.Unlock()
	if err != nil {
		ses.close()
	}
}

// replyErr sends a failure response carrying err's status code and
// rendered message.
func (ses *session) replyErr(reqID uint64, err error) {
	code, detail := encodeErr(err)
	var e encoder
	e.uvarint(reqID)
	e.u8(code)
	e.string(detail)
	ses.wmu.Lock()
	werr := writeFrame(ses.cmd, e.b)
	ses.wmu.Unlock()
	if werr != nil {
		ses.close()
	}
}

// vector returns the session's shadow vector vecID, creating it (with a
// push hook wired to the notification queue) on first use. The shadow
// is the CF-side image of a vector living in the client process: the
// facility flips shadow bits, the hook forwards each flip, and the
// client applies it to the real system-owned vector.
func (ses *session) vector(vecID uint64, length int) *cf.BitVector {
	if vecID == 0 {
		return nil
	}
	ses.vmu.Lock()
	defer ses.vmu.Unlock()
	if v, ok := ses.vectors[vecID]; ok {
		return v
	}
	v := cf.NewBitVector(length)
	v.SetNotify(func(bit int, set bool) {
		ses.push(notifyFrame{vec: vecID, bit: int64(bit), set: set})
	})
	ses.vectors[vecID] = v
	return v
}

// push enqueues one flip for the notification writer. It runs on the
// flipping command's goroutine with structure locks held, so it must
// not block: a full queue means the client has stopped draining, and
// the session is severed (asynchronously — close takes locks push must
// not wait on).
func (ses *session) push(f notifyFrame) {
	select {
	case ses.notifyCh <- f:
	default:
		go ses.close()
	}
}

// notifyWriter drains the queue onto the notification connection.
func (ses *session) notifyWriter(conn net.Conn) {
	for f := range ses.notifyCh {
		var e encoder
		e.uvarint(f.vec)
		e.varint(f.bit)
		e.bool(f.set)
		if writeFrame(conn, e.b) != nil {
			ses.close()
			return
		}
	}
}

// dispatch decodes and executes one command against the facility,
// sending the response. The context handed to structure commands is
// Background: the client's pipeline gate already polled the caller's
// context before the request was sent, and a cancellation arriving
// later must not produce a half-applied command on the CF — once a
// frame is on the wire the command runs to completion and the client
// learns the outcome (or loses the link and treats the CF as down).
func (ses *session) dispatch(reqID uint64, op uint8, d *decoder) {
	ctx := context.Background()
	fac := ses.srv.fac
	switch op {
	// ---- node-level ----
	case opStructureNames:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		names := fac.StructureNames()
		ses.reply(reqID, func(e *encoder) { e.strings(names) })
	case opFailed:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		failed := fac.Failed()
		ses.reply(reqID, func(e *encoder) { e.bool(failed) })
	case opFail:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		fac.Fail()
		ses.reply(reqID, nil)
	case opFailAfter:
		n := d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		fac.FailAfter(n)
		ses.reply(reqID, nil)
	case opSetSyncLatency:
		ns := d.varint()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		fac.SetSyncLatency(time.Duration(ns))
		ses.reply(reqID, nil)
	case opDeallocate:
		name := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := fac.Deallocate(name); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opAllocLock:
		name, entries := d.string(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if _, err := fac.AllocateLockStructure(name, entries); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opAllocCache:
		name, maxEntries := d.string(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if _, err := fac.AllocateCacheStructure(name, maxEntries); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opAllocList:
		name, nLists, nLocks, maxEntries := d.string(), d.int(), d.int(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if _, err := fac.AllocateListStructure(name, nLists, nLocks, maxEntries); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opStructInfo:
		name := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		r := fac.Structure(name)
		if r == nil {
			ses.reply(reqID, func(e *encoder) { e.bool(false); e.int(0); e.int(0) })
			return
		}
		model := r.ReplicaModel()
		size := 0
		switch model {
		case cf.LockModel:
			size = r.(cf.Lock).Entries()
		case cf.ListModel:
			size = r.(cf.List).Lists()
		}
		ses.reply(reqID, func(e *encoder) { e.bool(true); e.int(int(model)); e.int(size) })
	case opFence:
		system := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.srv.Fence(system)
		ses.reply(reqID, nil)
	case opStructDisconnect:
		name, conn := d.string(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		r := fac.Structure(name)
		if r == nil {
			ses.replyErr(reqID, fmt.Errorf("%w: %q", cf.ErrNoStructure, name))
			return
		}
		r.ReplicaDisconnect(conn)
		ses.reply(reqID, nil)
	case opStructFailConn:
		name, conn := d.string(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		r := fac.Structure(name)
		if r == nil {
			ses.replyErr(reqID, fmt.Errorf("%w: %q", cf.ErrNoStructure, name))
			return
		}
		r.ReplicaFailConnector(conn)
		ses.reply(reqID, nil)

	// ---- lock model ----
	case opLockConnect, opLockObtain, opLockForce, opLockRelease, opLockInterest,
		opLockSetRecord, opLockDelRecord, opLockRecords, opLockAdopt, opLockRetainedConns:
		ses.dispatchLock(ctx, reqID, op, d)

	// ---- cache model ----
	case opCacheConnect, opCacheRead, opCacheWrite, opCacheUnregister, opCacheCastoutBegin,
		opCacheCastoutEnd, opCacheChangedBlocks, opCacheRegistered, opCacheVersion:
		ses.dispatchCache(ctx, reqID, op, d)

	// ---- list model ----
	case opListConnect, opListSetLock, opListReleaseLock, opListLockHolder, opListWrite,
		opListRead, opListReadFirst, opListPop, opListDelete, opListMove, opListSetAdjunct,
		opListLen, opListEntries, opListTotalEntries, opListMonitor, opListUnmonitor:
		ses.dispatchList(ctx, reqID, op, d)

	// ---- batch envelope ----
	case opBatch:
		ses.dispatchBatch(ctx, reqID, d)

	default:
		ses.replyErr(reqID, fmt.Errorf("cflink: unknown opcode %d", op))
	}
}

func (ses *session) dispatchLock(ctx context.Context, reqID uint64, op uint8, d *decoder) {
	name := d.string()
	if d.err != nil {
		ses.replyErr(reqID, ErrMalformed)
		return
	}
	ls, err := ses.srv.fac.LockStructure(name)
	if err != nil {
		ses.replyErr(reqID, err)
		return
	}
	switch op {
	case opLockConnect:
		conn := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := ls.Connect(ctx, conn); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opLockObtain:
		idx, conn, mode := d.int(), d.string(), cf.LockMode(d.int())
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		res, err := ls.Obtain(ctx, idx, conn, mode)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.bool(res.Granted); e.strings(res.Holders) })
	case opLockForce:
		idx, conn, mode := d.int(), d.string(), cf.LockMode(d.int())
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := ls.ForceObtain(ctx, idx, conn, mode); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opLockRelease:
		idx, conn, mode := d.int(), d.string(), cf.LockMode(d.int())
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := ls.Release(ctx, idx, conn, mode); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opLockInterest:
		idx, conn := d.int(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		share, excl, err := ls.Interest(idx, conn)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.int(share); e.int(excl) })
	case opLockSetRecord:
		conn, resource, mode := d.string(), d.string(), cf.LockMode(d.int())
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := ls.SetRecord(ctx, conn, resource, mode); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opLockDelRecord:
		conn, resource := d.string(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := ls.DeleteRecord(ctx, conn, resource); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opLockRecords:
		conn := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		recs, err := ls.Records(ctx, conn)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.lockRecords(recs) })
	case opLockAdopt:
		conn := d.string()
		recs := d.lockRecords()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ls.AdoptRetained(conn, recs)
		ses.reply(reqID, nil)
	case opLockRetainedConns:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		conns := ls.RetainedConnectors()
		ses.reply(reqID, func(e *encoder) { e.strings(conns) })
	}
}

func (ses *session) dispatchCache(ctx context.Context, reqID uint64, op uint8, d *decoder) {
	name := d.string()
	if d.err != nil {
		ses.replyErr(reqID, ErrMalformed)
		return
	}
	cs, err := ses.srv.fac.CacheStructure(name)
	if err != nil {
		ses.replyErr(reqID, err)
		return
	}
	switch op {
	case opCacheConnect:
		conn, vecID, vecLen := d.string(), d.uvarint(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := cs.Connect(ctx, conn, ses.vector(vecID, vecLen)); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opCacheRead:
		conn, block, vecIdx := d.string(), d.string(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		res, err := cs.ReadAndRegister(ctx, conn, block, vecIdx)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) {
			e.bytes(res.Data)
			e.bool(res.Hit)
			e.uvarint(res.Version)
		})
	case opCacheWrite:
		conn, block := d.string(), d.string()
		data := d.bytes()
		doCache, changed, vecIdx := d.bool(), d.bool(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := cs.WriteAndInvalidate(ctx, conn, block, data, doCache, changed, vecIdx); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opCacheUnregister:
		conn, block := d.string(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := cs.Unregister(ctx, conn, block); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opCacheCastoutBegin:
		conn, block := d.string(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		data, version, err := cs.CastoutBegin(ctx, conn, block)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.bytes(data); e.uvarint(version) })
	case opCacheCastoutEnd:
		conn, block, version := d.string(), d.string(), d.uvarint()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := cs.CastoutEnd(ctx, conn, block, version); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opCacheChangedBlocks:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		blocks := cs.ChangedBlocks()
		ses.reply(reqID, func(e *encoder) { e.strings(blocks) })
	case opCacheRegistered:
		block := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		conns := cs.Registered(block)
		ses.reply(reqID, func(e *encoder) { e.strings(conns) })
	case opCacheVersion:
		block := d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		v := cs.Version(block)
		ses.reply(reqID, func(e *encoder) { e.uvarint(v) })
	}
}

func (ses *session) dispatchList(ctx context.Context, reqID uint64, op uint8, d *decoder) {
	name := d.string()
	if d.err != nil {
		ses.replyErr(reqID, ErrMalformed)
		return
	}
	lst, err := ses.srv.fac.ListStructure(name)
	if err != nil {
		ses.replyErr(reqID, err)
		return
	}
	switch op {
	case opListConnect:
		conn, vecID, vecLen := d.string(), d.uvarint(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.Connect(ctx, conn, ses.vector(vecID, vecLen)); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListSetLock:
		idx, conn := d.int(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.SetLock(ctx, idx, conn); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListReleaseLock:
		idx, conn := d.int(), d.string()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.ReleaseLock(ctx, idx, conn); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListLockHolder:
		idx := d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		holder := lst.LockHolder(idx)
		ses.reply(reqID, func(e *encoder) { e.string(holder) })
	case opListWrite:
		conn, list, id, key := d.string(), d.int(), d.string(), d.string()
		data := d.bytes()
		order := cf.Order(d.int())
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.Write(ctx, conn, list, id, key, data, order, cond); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListRead:
		conn, id := d.string(), d.string()
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		le, err := lst.Read(ctx, conn, id, cond)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.listEntry(le) })
	case opListReadFirst:
		conn, list := d.string(), d.int()
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		le, err := lst.ReadFirst(ctx, conn, list, cond)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.listEntry(le) })
	case opListPop:
		conn, list := d.string(), d.int()
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		le, err := lst.Pop(ctx, conn, list, cond)
		if err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, func(e *encoder) { e.listEntry(le) })
	case opListDelete:
		conn, id := d.string(), d.string()
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.Delete(ctx, conn, id, cond); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListMove:
		conn, id, toList := d.string(), d.string(), d.int()
		order := cf.Order(d.int())
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.Move(ctx, conn, id, toList, order, cond); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListSetAdjunct:
		conn, id, adjunct := d.string(), d.string(), d.string()
		cond := d.cond()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.SetAdjunct(ctx, conn, id, adjunct, cond); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListLen:
		list := d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		n := lst.Len(list)
		ses.reply(reqID, func(e *encoder) { e.int(n) })
	case opListEntries:
		list := d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		es := lst.Entries(list)
		ses.reply(reqID, func(e *encoder) { e.listEntries(es) })
	case opListTotalEntries:
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		n := lst.TotalEntries()
		ses.reply(reqID, func(e *encoder) { e.int(n) })
	case opListMonitor:
		conn, list, vecIdx := d.string(), d.int(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		if err := lst.Monitor(ctx, conn, list, vecIdx); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		ses.reply(reqID, nil)
	case opListUnmonitor:
		conn, list := d.string(), d.int()
		if err := d.finish(); err != nil {
			ses.replyErr(reqID, err)
			return
		}
		lst.Unmonitor(conn, list)
		ses.reply(reqID, nil)
	}
}

// dispatchBatch runs one batch envelope against the named structure:
// the whole envelope executes as one server-side command (the
// structure's Batch gate applies it all-or-nothing with respect to
// facility death), and the response carries one status byte per
// subcommand. The envelope's model is taken from its first subcommand;
// a mixed envelope fails the structure's own validation.
func (ses *session) dispatchBatch(ctx context.Context, reqID uint64, d *decoder) {
	name := d.string()
	cmds := d.batchCmds()
	if err := d.finish(); err != nil {
		ses.replyErr(reqID, err)
		return
	}
	if len(cmds) == 0 {
		ses.replyErr(reqID, fmt.Errorf("%w: empty batch", cf.ErrBadArgument))
		return
	}
	model, ok := cmds[0].Op.Model()
	if !ok {
		ses.replyErr(reqID, fmt.Errorf("%w: unknown batch op %d", cf.ErrBadArgument, int(cmds[0].Op)))
		return
	}
	var (
		errs []error
		err  error
	)
	fac := ses.srv.fac
	switch model {
	case cf.LockModel:
		var ls cf.Lock
		if ls, err = fac.LockStructure(name); err == nil {
			errs, err = ls.Batch(ctx, cmds)
		}
	case cf.CacheModel:
		var cs cf.Cache
		if cs, err = fac.CacheStructure(name); err == nil {
			errs, err = cs.Batch(ctx, cmds)
		}
	default:
		var lst cf.List
		if lst, err = fac.ListStructure(name); err == nil {
			errs, err = lst.Batch(ctx, cmds)
		}
	}
	if err != nil {
		ses.replyErr(reqID, err)
		return
	}
	ses.reply(reqID, func(e *encoder) { e.batchErrs(errs) })
}
