// Package cflink is the CF transport subsystem: it runs a coupling
// facility in its own process and connects systems to it over a real
// byte stream (TCP or unix sockets), the repo's stand-in for the
// paper's coupling links (§3.3). A Server wraps an in-process
// cf.Facility and serves its command set; a Client implements cf.Node
// and the three structure-model command interfaces, so the duplexed
// front, cfrm duplexing, in-line failover, and the
// gate→metrics→inject→retry→route pipeline all work unchanged over the
// wire (DESIGN §11).
//
// Wire format. Every message is one frame: a 4-byte big-endian length
// followed by that many payload bytes, capped at MaxFrame. A session
// has two connections:
//
//   - the command connection carries request frames (uvarint request
//     ID, 1-byte opcode, op-specific fields) and matching response
//     frames (request ID, 1-byte status — 0 ok, else an error code
//     mapping to a cf sentinel — then results or a detail string);
//     responses may arrive out of request order.
//   - the notification connection carries server-pushed bit-vector
//     flips (vector ID, zigzag bit index with -1 meaning ClearAll, new
//     state), the wire form of the CF flipping bits in system-owned
//     vectors with no interrupt: cross-invalidates and list
//     transitions reach the client without a command round trip.
//
// Scalar fields are uvarints (zigzag varints where signed); strings and
// byte blocks are length-prefixed. The codec never panics on malformed
// input: truncated, oversized, or corrupt frames fail with an error
// (fuzzed in codec_fuzz_test.go).
package cflink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sysplex/internal/cf"
)

// MaxFrame bounds one frame's payload. Large enough for any structure
// command (cache blocks and list payloads are KB-class); small enough
// that a corrupt length prefix cannot balloon allocation.
const MaxFrame = 1 << 20

// Frame-level errors.
var (
	ErrFrameTooBig = errors.New("cflink: frame exceeds MaxFrame")
	ErrMalformed   = errors.New("cflink: malformed frame")
)

// magic opens every session's first frame on both connection kinds.
var magic = [4]byte{'C', 'F', 'L', '1'}

// Connection kinds declared in the session handshake.
//
// lintwire: table connkinds
const (
	connCommand uint8 = 0
	connNotify  uint8 = 1
)

// Opcodes. Numeric values are the wire protocol — append, never renumber.
// The lintwire annotation makes sysplexlint hold the table to the
// produce/consume contract: every opcode must be collision-free, sent
// by some client path, and named by some dispatch case.
//
// lintwire: table opcodes dispatch
const (
	// Node-level commands.
	opStructureNames   uint8 = 1
	opFailed           uint8 = 2
	opFail             uint8 = 3
	opFailAfter        uint8 = 4
	opSetSyncLatency   uint8 = 5
	opDeallocate       uint8 = 6
	opAllocLock        uint8 = 7
	opAllocCache       uint8 = 8
	opAllocList        uint8 = 9
	opStructInfo       uint8 = 10
	opFence            uint8 = 11
	opStructDisconnect uint8 = 12
	opStructFailConn   uint8 = 13

	// Lock-model commands.
	opLockConnect       uint8 = 20
	opLockObtain        uint8 = 21
	opLockForce         uint8 = 22
	opLockRelease       uint8 = 23
	opLockInterest      uint8 = 24
	opLockSetRecord     uint8 = 25
	opLockDelRecord     uint8 = 26
	opLockRecords       uint8 = 27
	opLockAdopt         uint8 = 28
	opLockRetainedConns uint8 = 29

	// Cache-model commands.
	opCacheConnect       uint8 = 40
	opCacheRead          uint8 = 41
	opCacheWrite         uint8 = 42
	opCacheUnregister    uint8 = 43
	opCacheCastoutBegin  uint8 = 44
	opCacheCastoutEnd    uint8 = 45
	opCacheChangedBlocks uint8 = 46
	opCacheRegistered    uint8 = 47
	opCacheVersion       uint8 = 48

	// List-model commands.
	opListConnect      uint8 = 60
	opListSetLock      uint8 = 61
	opListReleaseLock  uint8 = 62
	opListLockHolder   uint8 = 63
	opListWrite        uint8 = 64
	opListRead         uint8 = 65
	opListReadFirst    uint8 = 66
	opListPop          uint8 = 67
	opListDelete       uint8 = 68
	opListMove         uint8 = 69
	opListSetAdjunct   uint8 = 70
	opListLen          uint8 = 71
	opListEntries      uint8 = 72
	opListTotalEntries uint8 = 73
	opListMonitor      uint8 = 74
	opListUnmonitor    uint8 = 75

	// Batch envelope: one request ID covers N subcommands (all three
	// structure models share the opcode; the target structure's model
	// types the envelope). The response carries one status byte per
	// subcommand — codeOK, or an error code plus detail string.
	opBatch uint8 = 90
)

// Response status codes. 0 is success; the rest map to the cf command
// sentinels so errors.Is works across the wire. The constants work
// positionally through codeSentinels, so sysplexlint checks the bytes
// for collisions and the sentinel table for coverage rather than
// requiring each name to appear in a switch.
//
// lintwire: table statuses
const (
	codeOK uint8 = iota
	codeCFDown
	codeNoStructure
	codeWrongModel
	codeExists
	codeStorage
	codeNotConnected
	codeLockHeld
	codeEntryNotFound
	codeListFull
	codeCacheFull
	codeBadArgument
	codeCloneUnsupported

	// codeOther carries errors with no sentinel: the detail string is
	// all the client gets.
	codeOther uint8 = 255
)

// codeSentinels maps status codes to cf sentinel errors (index = code);
// sysplexlint fails the build if a status constant below the codeOther
// catch-all has no entry here.
//
// lintwire: index-of statuses
var codeSentinels = []error{
	nil,
	cf.ErrCFDown,
	cf.ErrNoStructure,
	cf.ErrWrongModel,
	cf.ErrExists,
	cf.ErrStorage,
	cf.ErrNotConnected,
	cf.ErrLockHeld,
	cf.ErrEntryNotFound,
	cf.ErrListFull,
	cf.ErrCacheFull,
	cf.ErrBadArgument,
	cf.ErrCloneUnsupported,
}

// encodeErr classifies err for the wire: the sentinel's status code
// plus the full rendered message as detail.
func encodeErr(err error) (code uint8, detail string) {
	for c := 1; c < len(codeSentinels); c++ {
		if errors.Is(err, codeSentinels[c]) {
			return uint8(c), err.Error()
		}
	}
	return codeOther, err.Error()
}

// wireError is a decoded command failure: the server's rendered message
// with the matching cf sentinel restored for errors.Is.
type wireError struct {
	sentinel error
	detail   string
}

func (e *wireError) Error() string { return e.detail }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeErr reconstructs a command error from its wire form.
func decodeErr(code uint8, detail string) error {
	if int(code) < len(codeSentinels) && code != codeOK {
		s := codeSentinels[code]
		if detail == "" || detail == s.Error() {
			return s
		}
		return &wireError{sentinel: s, detail: detail}
	}
	if detail == "" {
		detail = fmt.Sprintf("cflink: remote error (code %d)", code)
	}
	return errors.New(detail)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it is large enough. An
// oversized length prefix fails with ErrFrameTooBig before any payload
// allocation.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encoder appends wire-format fields to a payload buffer. It cannot
// fail; size limits are enforced at frame-write time.
type encoder struct {
	b []byte
}

func (e *encoder) u8(v uint8)       { e.b = append(e.b, v) }
func (e *encoder) bool(v bool)      { e.b = append(e.b, boolByte(v)) }
func (e *encoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *encoder) int(v int)        { e.varint(int64(v)) }

func (e *encoder) bytes(v []byte) {
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

func (e *encoder) string(v string) {
	e.uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// decoder consumes wire-format fields from a payload. Errors are
// sticky: after the first malformed field every subsequent read returns
// a zero value, so decode call sites check err once at the end. It
// never panics and never reads past the payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int { return int(d.varint()) }

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

// finish reports a decode error if any field was malformed or trailing
// bytes remain (a frame must be consumed exactly).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return nil
}

// stringSlice encoding: uvarint count, then each string.

func (e *encoder) strings(v []string) {
	e.uvarint(uint64(len(v)))
	for _, s := range v {
		e.string(s)
	}
}

func (d *decoder) strings() []string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		// Each element costs ≥ 1 byte, so count can never exceed the
		// remaining payload — reject before allocating.
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.string())
	}
	return out
}

// LockRecord encoding.

func (e *encoder) lockRecord(r cf.LockRecord) {
	e.string(r.Connector)
	e.string(r.Resource)
	e.int(int(r.Mode))
}

func (d *decoder) lockRecord() cf.LockRecord {
	return cf.LockRecord{
		Connector: d.string(),
		Resource:  d.string(),
		Mode:      cf.LockMode(d.int()),
	}
}

func (e *encoder) lockRecords(rs []cf.LockRecord) {
	e.uvarint(uint64(len(rs)))
	for _, r := range rs {
		e.lockRecord(r)
	}
}

func (d *decoder) lockRecords() []cf.LockRecord {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	out := make([]cf.LockRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.lockRecord())
	}
	return out
}

// ListEntry encoding.

func (e *encoder) listEntry(le cf.ListEntry) {
	e.string(le.ID)
	e.string(le.Key)
	e.bytes(le.Data)
	e.string(le.Adjunct)
	e.int(le.List)
}

func (d *decoder) listEntry() cf.ListEntry {
	return cf.ListEntry{
		ID:      d.string(),
		Key:     d.string(),
		Data:    d.bytes(),
		Adjunct: d.string(),
		List:    d.int(),
	}
}

func (e *encoder) listEntries(es []cf.ListEntry) {
	e.uvarint(uint64(len(es)))
	for _, le := range es {
		e.listEntry(le)
	}
}

func (d *decoder) listEntries() []cf.ListEntry {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	out := make([]cf.ListEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.listEntry())
	}
	return out
}

// Cond encoding.

func (e *encoder) cond(c cf.Cond) {
	e.bool(c.Use)
	e.int(c.LockIndex)
}

func (d *decoder) cond() cf.Cond {
	return cf.Cond{Use: d.bool(), LockIndex: d.int()}
}

// Batch subcommand encoding: a 1-byte op tag, then exactly the fields
// that op's one-command encoding carries, in the same order — the
// subcommand forms are the existing command forms minus the per-op
// frame.

func (e *encoder) batchCmd(c *cf.BatchCmd) {
	e.u8(uint8(c.Op))
	switch c.Op {
	case cf.BatchOpLockRelease, cf.BatchOpLockForce:
		e.int(c.Idx)
		e.string(c.Conn)
		e.int(int(c.Mode))
	case cf.BatchOpLockSetRecord:
		e.string(c.Conn)
		e.string(c.Name)
		e.int(int(c.Mode))
	case cf.BatchOpLockDelRecord, cf.BatchOpCacheUnregister:
		e.string(c.Conn)
		e.string(c.Name)
	case cf.BatchOpCacheWrite:
		e.string(c.Conn)
		e.string(c.Name)
		e.bytes(c.Data)
		e.bool(c.Cache)
		e.bool(c.Changed)
		e.int(c.VecIdx)
	case cf.BatchOpCacheCastoutEnd:
		e.string(c.Conn)
		e.string(c.Name)
		e.uvarint(c.Version)
	case cf.BatchOpListWrite:
		e.string(c.Conn)
		e.int(c.Idx)
		e.string(c.Name)
		e.string(c.Key)
		e.bytes(c.Data)
		e.int(int(c.Order))
		e.cond(c.Cond)
	case cf.BatchOpListDelete:
		e.string(c.Conn)
		e.string(c.Name)
		e.cond(c.Cond)
	}
	// An unknown op encodes as the bare tag; the decoder rejects it.
	// The client validates envelopes before encoding, so this is only
	// reachable from hand-built frames.
}

func (d *decoder) batchCmd() cf.BatchCmd {
	c := cf.BatchCmd{Op: cf.BatchOp(d.u8())}
	switch c.Op {
	case cf.BatchOpLockRelease, cf.BatchOpLockForce:
		c.Idx = d.int()
		c.Conn = d.string()
		c.Mode = cf.LockMode(d.int())
	case cf.BatchOpLockSetRecord:
		c.Conn = d.string()
		c.Name = d.string()
		c.Mode = cf.LockMode(d.int())
	case cf.BatchOpLockDelRecord, cf.BatchOpCacheUnregister:
		c.Conn = d.string()
		c.Name = d.string()
	case cf.BatchOpCacheWrite:
		c.Conn = d.string()
		c.Name = d.string()
		c.Data = d.bytes()
		c.Cache = d.bool()
		c.Changed = d.bool()
		c.VecIdx = d.int()
	case cf.BatchOpCacheCastoutEnd:
		c.Conn = d.string()
		c.Name = d.string()
		c.Version = d.uvarint()
	case cf.BatchOpListWrite:
		c.Conn = d.string()
		c.Idx = d.int()
		c.Name = d.string()
		c.Key = d.string()
		c.Data = d.bytes()
		c.Order = cf.Order(d.int())
		c.Cond = d.cond()
	case cf.BatchOpListDelete:
		c.Conn = d.string()
		c.Name = d.string()
		c.Cond = d.cond()
	default:
		d.fail()
	}
	return c
}

func (e *encoder) batchCmds(cmds []cf.BatchCmd) {
	e.uvarint(uint64(len(cmds)))
	for i := range cmds {
		e.batchCmd(&cmds[i])
	}
}

func (d *decoder) batchCmds() []cf.BatchCmd {
	n := d.uvarint()
	// Each subcommand costs ≥ 1 byte; additionally a well-formed
	// envelope never exceeds MaxBatchOps — reject both before
	// allocating.
	if d.err != nil || n > uint64(len(d.b)-d.off) || n > cf.MaxBatchOps {
		d.fail()
		return nil
	}
	out := make([]cf.BatchCmd, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.batchCmd())
	}
	return out
}

// Batch status encoding: one status byte per subcommand; non-OK
// statuses carry the rendered detail string.

func (e *encoder) batchErrs(errs []error) {
	e.uvarint(uint64(len(errs)))
	for _, err := range errs {
		if err == nil {
			e.u8(codeOK)
			continue
		}
		code, detail := encodeErr(err)
		e.u8(code)
		e.string(detail)
	}
}

func (d *decoder) batchErrs() []error {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) || n > cf.MaxBatchOps {
		d.fail()
		return nil
	}
	out := make([]error, 0, n)
	for i := uint64(0); i < n; i++ {
		code := d.u8()
		if code == codeOK {
			out = append(out, nil)
			continue
		}
		out = append(out, decodeErr(code, d.string()))
	}
	return out
}
