package cflink

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/metrics"
	"sysplex/internal/vclock"
)

// ErrClientClosed fails commands issued after Close.
var ErrClientClosed = errors.New("cflink: client closed")

// Option configures Dial.
type Option func(*Client)

// WithSystem declares the connecting system's name to the server. The
// name is the fencing identity: Server.Fence(name) severs this client
// and refuses its reconnects. Empty (the default) connects anonymously
// and unfenceably — fine for tools, wrong for sysplex members.
func WithSystem(name string) Option {
	return func(c *Client) { c.system = name }
}

// WithClock injects the client-side clock used for the pipeline's
// context gate and for RTT metrics. Defaults to vclock.Real().
func WithClock(clock vclock.Clock) Option {
	return func(c *Client) { c.clock = clock }
}

// Client is a coupling facility reached over a cflink transport. It
// implements cf.Node — and its structure handles implement cf.Lock,
// cf.Cache, cf.List, and cf.Replica — so a remote facility drops into
// the duplexed front, cfrm policies, and the sysplex façade exactly
// where an in-process *Facility does.
//
// Failure model: any transport failure (dial loss, write error, read
// error, server-side fence or close) marks the client failed and fails
// every in-flight and subsequent command with cf.ErrCFDown. That is
// deliberately indistinguishable from the facility dying — to a
// system, a severed coupling link IS a dead CF, and the duplexed
// front's failover path handles both identically. A Client does not
// reconnect; recovery is cfrm's job, not the link's.
type Client struct {
	name   string // facility name, from the handshake
	system string
	clock  vclock.Clock
	reg    *metrics.Registry

	cmd    net.Conn
	notify net.Conn
	wmu    sync.Mutex // serializes request frames on cmd

	pmu     sync.Mutex
	pending map[uint64]chan clientResp
	nextReq atomic.Uint64

	vmu     sync.Mutex
	vectors map[uint64]*cf.BitVector
	vecIDs  map[*cf.BitVector]uint64
	nextVec uint64

	failed    atomic.Bool
	failErr   atomic.Pointer[error]
	closeOnce sync.Once

	mOps *metrics.Counter
	mRTT *metrics.Histogram
}

// clientResp is one command's outcome delivered to its waiter.
type clientResp struct {
	payload []byte // full response frame (reqID already consumed by reader)
	err     error  // transport-level failure
}

// Dial connects to a cfserver at addr over network ("tcp", "tcp4",
// "unix", ...), establishing both the command and the notification
// connection.
func Dial(network, addr string, opts ...Option) (*Client, error) {
	c := &Client{
		reg:     metrics.NewRegistry(),
		pending: make(map[uint64]chan clientResp),
		vectors: make(map[uint64]*cf.BitVector),
		vecIDs:  make(map[*cf.BitVector]uint64),
	}
	for _, o := range opts {
		o(c)
	}
	if c.clock == nil {
		c.clock = vclock.Real()
	}
	c.mOps = c.reg.Counter("cflink.cmd.count")
	c.mRTT = c.reg.Histogram("cflink.cmd.rtt")

	cmd, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("cflink: dial %s %s: %w", network, addr, err)
	}
	// Handshake deadlines are real time: they bound a half-open peer at
	// the link protocol level, below the simulated sysplex clock.
	cmd.SetDeadline(time.Now().Add(handshakeTimeout)) // lintwall: link handshake bound, not sysplex time
	var e encoder
	e.b = append(e.b, magic[:]...)
	e.u8(connCommand)
	e.string(c.system)
	if err := writeFrame(cmd, e.b); err != nil {
		cmd.Close()
		return nil, fmt.Errorf("cflink: handshake: %w", err)
	}
	payload, err := readFrame(cmd, nil)
	if err != nil {
		cmd.Close()
		return nil, fmt.Errorf("cflink: handshake: %w", err)
	}
	d := &decoder{b: payload}
	code := d.u8()
	if code != codeOK {
		detail := d.string()
		cmd.Close()
		return nil, fmt.Errorf("cflink: handshake rejected: %w", decodeErr(code, detail))
	}
	c.name = d.string()
	token := d.uvarint()
	if err := d.finish(); err != nil {
		cmd.Close()
		return nil, fmt.Errorf("cflink: handshake: %w", err)
	}
	cmd.SetDeadline(time.Time{})
	c.cmd = cmd

	nc, err := net.Dial(network, addr)
	if err != nil {
		cmd.Close()
		return nil, fmt.Errorf("cflink: dial notify %s %s: %w", network, addr, err)
	}
	nc.SetDeadline(time.Now().Add(handshakeTimeout)) // lintwall: link handshake bound, not sysplex time
	var ne encoder
	ne.b = append(ne.b, magic[:]...)
	ne.u8(connNotify)
	ne.uvarint(token)
	if err := writeFrame(nc, ne.b); err != nil {
		cmd.Close()
		nc.Close()
		return nil, fmt.Errorf("cflink: notify handshake: %w", err)
	}
	npayload, err := readFrame(nc, nil)
	if err != nil || len(npayload) < 1 || npayload[0] != codeOK {
		cmd.Close()
		nc.Close()
		if err == nil {
			err = errors.New("rejected")
		}
		return nil, fmt.Errorf("cflink: notify handshake: %w", err)
	}
	nc.SetDeadline(time.Time{})
	c.notify = nc

	go c.readLoop()
	go c.notifyLoop()
	return c, nil
}

// Name returns the remote facility's name.
func (c *Client) Name() string { return c.name }

// System returns the system name this client declared at handshake.
func (c *Client) System() string { return c.system }

// Metrics exposes the client-side transport instrumentation
// (cflink.cmd.count, cflink.cmd.rtt, cflink.notify.count). The remote
// facility keeps its own registry in its own process; a Node's metrics
// are always the view from this side of the link.
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Close tears the session down. In-flight commands fail with
// cf.ErrCFDown.
func (c *Client) Close() { c.fail(ErrClientClosed) }

// fail marks the client dead, severs both connections, and fails every
// in-flight command. First cause wins; later calls only re-close.
func (c *Client) fail(cause error) {
	c.closeOnce.Do(func() {
		c.failErr.Store(&cause)
		c.failed.Store(true)
		c.cmd.Close()
		c.notify.Close()
		c.pmu.Lock()
		for id, ch := range c.pending {
			delete(c.pending, id)
			ch <- clientResp{err: cf.ErrCFDown}
		}
		c.pmu.Unlock()
	})
}

// readLoop delivers response frames to their waiting commands.
func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.cmd, nil)
		if err != nil {
			c.fail(err)
			return
		}
		d := &decoder{b: payload}
		reqID := d.uvarint()
		if d.err != nil {
			c.fail(ErrMalformed)
			return
		}
		c.pmu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.pmu.Unlock()
		if ch != nil {
			ch <- clientResp{payload: payload[d.off:]}
		}
	}
}

// notifyLoop applies server-pushed bit flips to the local system-owned
// vectors: the wire form of the CF flipping validity bits with no
// interrupt. Exploiters keep testing their vectors with local loads;
// the flip just arrives a link-latency later than in-process (the
// documented coherence window of a remote CF).
func (c *Client) notifyLoop() {
	mNotify := c.reg.Counter("cflink.notify.count")
	for {
		payload, err := readFrame(c.notify, nil)
		if err != nil {
			c.fail(err)
			return
		}
		d := &decoder{b: payload}
		vecID := d.uvarint()
		bit := d.varint()
		set := d.bool()
		if d.finish() != nil {
			c.fail(ErrMalformed)
			return
		}
		c.vmu.Lock()
		v := c.vectors[vecID]
		c.vmu.Unlock()
		if v == nil {
			continue
		}
		mNotify.Inc()
		switch {
		case bit < 0:
			v.ClearAll()
		case set:
			v.Set(int(bit))
		default:
			v.Clear(int(bit))
		}
	}
}

// registerVector assigns (or recalls) the wire ID under which vector's
// shadow lives on the server. Returns 0 for a nil vector.
func (c *Client) registerVector(v *cf.BitVector) uint64 {
	if v == nil {
		return 0
	}
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if id, ok := c.vecIDs[v]; ok {
		return id
	}
	c.nextVec++
	id := c.nextVec
	c.vecIDs[v] = id
	c.vectors[id] = v
	return id
}

// roundTrip sends one command and waits for its response.
//
// No-partial-effect across the wire: the context is polled here,
// BEFORE the request frame is written — a cancelled or deadline-expired
// command fails with the context's error and was never sent, so it has
// no effect on the remote facility. Once the frame is on the wire the
// wait is deliberately uncancellable: the command is executing remotely
// and the client must learn its outcome. The wait can only end with the
// response or with the link dying, which fails the command with
// cf.ErrCFDown — exactly the signal the duplexed front's failover path
// expects from a dead CF.
func (c *Client) roundTrip(ctx context.Context, op uint8, build func(e *encoder)) (*decoder, error) {
	if c.failed.Load() {
		return nil, cf.ErrCFDown
	}
	if err := vclock.Check(ctx, c.clock); err != nil {
		return nil, err
	}
	id := c.nextReq.Add(1)
	ch := make(chan clientResp, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()

	var e encoder
	e.uvarint(id)
	e.u8(op)
	if build != nil {
		build(&e)
	}
	if len(e.b) > MaxFrame {
		// An oversized request never reaches the wire: fail the one
		// command cleanly instead of killing the session (writeFrame
		// would surface this as a transport death). Batches are the one
		// caller that can hit it — they chunk and retry smaller.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, fmt.Errorf("%w: %d byte request", ErrFrameTooBig, len(e.b))
	}
	start := c.clock.Now()
	c.wmu.Lock()
	err := writeFrame(c.cmd, e.b)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.fail(err)
		return nil, cf.ErrCFDown
	}
	resp := <-ch
	c.mOps.Inc()
	if resp.err != nil {
		return nil, resp.err
	}
	c.mRTT.Observe(c.clock.Since(start))
	d := &decoder{b: resp.payload}
	code := d.u8()
	if code != codeOK {
		detail := d.string()
		if err := d.finish(); err != nil {
			return nil, err
		}
		return nil, decodeErr(code, detail)
	}
	return d, nil
}

// call runs a command whose response carries no result fields.
func (c *Client) call(ctx context.Context, op uint8, build func(e *encoder)) error {
	d, err := c.roundTrip(ctx, op, build)
	if err != nil {
		return err
	}
	return d.finish()
}

// ---- cf.Node ----

// StructureNames lists the remote facility's structures (nil if the
// link is down).
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) StructureNames() []string {
	d, err := c.roundTrip(context.Background(), opStructureNames, nil)
	if err != nil {
		return nil
	}
	names := d.strings()
	if d.finish() != nil {
		return nil
	}
	return names
}

// Failed reports whether the remote facility is down — or unreachable,
// which to this system is the same thing.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) Failed() bool {
	if c.failed.Load() {
		return true
	}
	d, err := c.roundTrip(context.Background(), opFailed, nil)
	if err != nil {
		return true
	}
	failed := d.bool()
	if d.finish() != nil {
		return true
	}
	return failed
}

// Fail breaks the remote facility (failure injection over the wire:
// the CF dies, the link stays up, and every command starts returning
// ErrCFDown end-to-end).
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) Fail() {
	_ = c.call(context.Background(), opFail, nil)
}

// FailAfter arms remote failure injection after n more commands begin.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) FailAfter(n int) {
	_ = c.call(context.Background(), opFailAfter, func(e *encoder) { e.int(n) })
}

// SetSyncLatency injects per-command service time on the remote
// facility (on top of the real link round trip this client pays).
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) SetSyncLatency(d time.Duration) {
	_ = c.call(context.Background(), opSetSyncLatency, func(e *encoder) { e.varint(int64(d)) })
}

// Deallocate frees a remote structure.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) Deallocate(name string) error {
	return c.call(context.Background(), opDeallocate, func(e *encoder) { e.string(name) })
}

// AllocateLockStructure allocates a lock structure and returns its
// remote handle.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) AllocateLockStructure(name string, entries int) (cf.Lock, error) {
	err := c.call(context.Background(), opAllocLock, func(e *encoder) {
		e.string(name)
		e.int(entries)
	})
	if err != nil {
		return nil, err
	}
	return &remoteLock{remoteStruct{c: c, name: name, model: cf.LockModel, size: entries}}, nil
}

// AllocateCacheStructure allocates a cache structure and returns its
// remote handle.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) AllocateCacheStructure(name string, maxEntries int) (cf.Cache, error) {
	err := c.call(context.Background(), opAllocCache, func(e *encoder) {
		e.string(name)
		e.int(maxEntries)
	})
	if err != nil {
		return nil, err
	}
	return &remoteCache{remoteStruct{c: c, name: name, model: cf.CacheModel}}, nil
}

// AllocateListStructure allocates a list structure and returns its
// remote handle.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) AllocateListStructure(name string, nLists, nLocks, maxEntries int) (cf.List, error) {
	err := c.call(context.Background(), opAllocList, func(e *encoder) {
		e.string(name)
		e.int(nLists)
		e.int(nLocks)
		e.int(maxEntries)
	})
	if err != nil {
		return nil, err
	}
	return &remoteList{remoteStruct{c: c, name: name, model: cf.ListModel, size: nLists}}, nil
}

// Structure returns the named remote structure's replica handle, or
// nil when absent (or the link is down — a dead node has no reachable
// structures).
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) Structure(name string) cf.Replica {
	d, err := c.roundTrip(context.Background(), opStructInfo, func(e *encoder) { e.string(name) })
	if err != nil {
		return nil
	}
	exists := d.bool()
	model := cf.Model(d.int())
	size := d.int()
	if d.finish() != nil || !exists {
		return nil
	}
	rs := remoteStruct{c: c, name: name, model: model, size: size}
	switch model {
	case cf.LockModel:
		return &remoteLock{rs}
	case cf.CacheModel:
		return &remoteCache{rs}
	case cf.ListModel:
		return &remoteList{rs}
	default:
		return nil
	}
}

// Fence asks the server to fence system: its connections are severed
// and its reconnects refused. A healthy sysplex member calls this to
// cut a sick peer off from shared state before taking over its work.
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (c *Client) Fence(system string) error {
	return c.call(context.Background(), opFence, func(e *encoder) { e.string(system) })
}

// ---- remote structure handles ----

// remoteStruct is the common core of the three remote handles: the
// client, the structure identity, and the fixed geometry learned at
// allocation (lock entries / list headers), which serves the local
// diagnostics (Entries, Lists, HashResource) without a round trip.
type remoteStruct struct {
	c     *Client
	name  string
	model cf.Model
	size  int
}

func (r *remoteStruct) Name() string { return r.name }

// structOp prefixes every structure command with the structure name.
func (r *remoteStruct) structOp(build func(e *encoder)) func(e *encoder) {
	return func(e *encoder) {
		e.string(r.name)
		if build != nil {
			build(e)
		}
	}
}

// ---- cf.Replica ----

func (r *remoteStruct) ReplicaName() string    { return r.name }
func (r *remoteStruct) ReplicaModel() cf.Model { return r.model }

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteStruct) ReplicaDisconnect(conn string) {
	_ = r.c.call(context.Background(), opStructDisconnect, r.structOp(func(e *encoder) { e.string(conn) }))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteStruct) ReplicaFailConnector(conn string) {
	_ = r.c.call(context.Background(), opStructFailConn, r.structOp(func(e *encoder) { e.string(conn) }))
}

// Batch ships an envelope of subcommands as one framed request — one
// link crossing, one request ID, per-subcommand status bytes back.
// This is the transport's whole reason to batch: EXP-TRANSPORT prices
// the crossing at 20–50× the structure work. Shared by all three
// remote handles; the server types the envelope by the structure's
// model and validates it at its trust boundary (batchApply), so the
// client does not pre-validate — the duplexed pipeline already did,
// and a malformed direct call fails server-side with the same error.
func (r *remoteStruct) Batch(ctx context.Context, cmds []cf.BatchCmd) ([]error, error) {
	d, err := r.c.roundTrip(ctx, opBatch, r.structOp(func(e *encoder) { e.batchCmds(cmds) }))
	if err != nil {
		return nil, err
	}
	errs := d.batchErrs()
	if ferr := d.finish(); ferr != nil {
		return nil, ferr
	}
	if len(errs) != len(cmds) {
		return nil, fmt.Errorf("%w: %d statuses for %d subcommands", ErrMalformed, len(errs), len(cmds))
	}
	return errs, nil
}

// ReplicaCloneInto always fails with cf.ErrCloneUnsupported: cloning
// means shipping a whole-structure image out of another process, which
// the link protocol does not do. Pairs that include a remote node are
// duplexed at allocation time instead — both replicas exist from the
// first command — and after a failover they stay simplex until cfrm
// finds a pairing that can be established.
func (r *remoteStruct) ReplicaCloneInto(dst cf.Node) (cf.Replica, error) {
	return nil, cf.ErrCloneUnsupported
}

// remoteLock is the wire handle of a lock-model structure.
type remoteLock struct{ remoteStruct }

// Entries returns the lock table size (known since allocation, no
// round trip).
// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteLock) Entries() int { return r.size }

// HashResource maps a resource name to a lock table entry. Computed
// locally with the same FNV-1a the facility uses — the hash is part of
// the structure's architecture, not server state, so both sides agree
// without a round trip.
func (r *remoteLock) HashResource(resource string) int {
	if r.size <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(resource))
	return int(h.Sum64() % uint64(r.size))
}

func (r *remoteLock) Connect(ctx context.Context, conn string) error {
	return r.c.call(ctx, opLockConnect, r.structOp(func(e *encoder) { e.string(conn) }))
}

func (r *remoteLock) Obtain(ctx context.Context, idx int, conn string, mode cf.LockMode) (cf.ObtainResult, error) {
	d, err := r.c.roundTrip(ctx, opLockObtain, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
		e.int(int(mode))
	}))
	if err != nil {
		return cf.ObtainResult{}, err
	}
	res := cf.ObtainResult{Granted: d.bool(), Holders: d.strings()}
	if err := d.finish(); err != nil {
		return cf.ObtainResult{}, err
	}
	return res, nil
}

func (r *remoteLock) ForceObtain(ctx context.Context, idx int, conn string, mode cf.LockMode) error {
	return r.c.call(ctx, opLockForce, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
		e.int(int(mode))
	}))
}

func (r *remoteLock) Release(ctx context.Context, idx int, conn string, mode cf.LockMode) error {
	return r.c.call(ctx, opLockRelease, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
		e.int(int(mode))
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteLock) Interest(idx int, conn string) (share, excl int, err error) {
	d, err := r.c.roundTrip(context.Background(), opLockInterest, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
	}))
	if err != nil {
		return 0, 0, err
	}
	share, excl = d.int(), d.int()
	if err := d.finish(); err != nil {
		return 0, 0, err
	}
	return share, excl, nil
}

func (r *remoteLock) SetRecord(ctx context.Context, conn, resource string, mode cf.LockMode) error {
	return r.c.call(ctx, opLockSetRecord, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(resource)
		e.int(int(mode))
	}))
}

func (r *remoteLock) DeleteRecord(ctx context.Context, conn, resource string) error {
	return r.c.call(ctx, opLockDelRecord, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(resource)
	}))
}

func (r *remoteLock) Records(ctx context.Context, conn string) ([]cf.LockRecord, error) {
	d, err := r.c.roundTrip(ctx, opLockRecords, r.structOp(func(e *encoder) { e.string(conn) }))
	if err != nil {
		return nil, err
	}
	recs := d.lockRecords()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return recs, nil
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteLock) AdoptRetained(conn string, recs []cf.LockRecord) {
	_ = r.c.call(context.Background(), opLockAdopt, r.structOp(func(e *encoder) {
		e.string(conn)
		e.lockRecords(recs)
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteLock) RetainedConnectors() []string {
	d, err := r.c.roundTrip(context.Background(), opLockRetainedConns, r.structOp(nil))
	if err != nil {
		return nil
	}
	conns := d.strings()
	if d.finish() != nil {
		return nil
	}
	return conns
}

// remoteCache is the wire handle of a cache-model structure.
type remoteCache struct{ remoteStruct }

func (r *remoteCache) Connect(ctx context.Context, conn string, vector *cf.BitVector) error {
	vecID := r.c.registerVector(vector)
	vecLen := 0
	if vector != nil {
		vecLen = vector.Len()
	}
	return r.c.call(ctx, opCacheConnect, r.structOp(func(e *encoder) {
		e.string(conn)
		e.uvarint(vecID)
		e.int(vecLen)
	}))
}

func (r *remoteCache) ReadAndRegister(ctx context.Context, conn, name string, vecIdx int) (cf.ReadResult, error) {
	d, err := r.c.roundTrip(ctx, opCacheRead, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(name)
		e.int(vecIdx)
	}))
	if err != nil {
		return cf.ReadResult{}, err
	}
	res := cf.ReadResult{Data: d.bytes(), Hit: d.bool(), Version: d.uvarint()}
	if err := d.finish(); err != nil {
		return cf.ReadResult{}, err
	}
	return res, nil
}

func (r *remoteCache) WriteAndInvalidate(ctx context.Context, conn, name string, data []byte, cache, changed bool, vecIdx int) error {
	return r.c.call(ctx, opCacheWrite, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(name)
		e.bytes(data)
		e.bool(cache)
		e.bool(changed)
		e.int(vecIdx)
	}))
}

func (r *remoteCache) Unregister(ctx context.Context, conn, name string) error {
	return r.c.call(ctx, opCacheUnregister, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(name)
	}))
}

func (r *remoteCache) CastoutBegin(ctx context.Context, conn, name string) ([]byte, uint64, error) {
	d, err := r.c.roundTrip(ctx, opCacheCastoutBegin, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(name)
	}))
	if err != nil {
		return nil, 0, err
	}
	data := d.bytes()
	version := d.uvarint()
	if err := d.finish(); err != nil {
		return nil, 0, err
	}
	return data, version, nil
}

func (r *remoteCache) CastoutEnd(ctx context.Context, conn, name string, version uint64) error {
	return r.c.call(ctx, opCacheCastoutEnd, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(name)
		e.uvarint(version)
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteCache) ChangedBlocks() []string {
	d, err := r.c.roundTrip(context.Background(), opCacheChangedBlocks, r.structOp(nil))
	if err != nil {
		return nil
	}
	blocks := d.strings()
	if d.finish() != nil {
		return nil
	}
	return blocks
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteCache) Registered(name string) []string {
	d, err := r.c.roundTrip(context.Background(), opCacheRegistered, r.structOp(func(e *encoder) { e.string(name) }))
	if err != nil {
		return nil
	}
	conns := d.strings()
	if d.finish() != nil {
		return nil
	}
	return conns
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteCache) Version(name string) uint64 {
	d, err := r.c.roundTrip(context.Background(), opCacheVersion, r.structOp(func(e *encoder) { e.string(name) }))
	if err != nil {
		return 0
	}
	v := d.uvarint()
	if d.finish() != nil {
		return 0
	}
	return v
}

// remoteList is the wire handle of a list-model structure.
type remoteList struct{ remoteStruct }

// Lists returns the list header count (known since allocation).
func (r *remoteList) Lists() int { return r.size }

func (r *remoteList) Connect(ctx context.Context, conn string, vector *cf.BitVector) error {
	vecID := r.c.registerVector(vector)
	vecLen := 0
	if vector != nil {
		vecLen = vector.Len()
	}
	return r.c.call(ctx, opListConnect, r.structOp(func(e *encoder) {
		e.string(conn)
		e.uvarint(vecID)
		e.int(vecLen)
	}))
}

func (r *remoteList) SetLock(ctx context.Context, idx int, conn string) error {
	return r.c.call(ctx, opListSetLock, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
	}))
}

func (r *remoteList) ReleaseLock(ctx context.Context, idx int, conn string) error {
	return r.c.call(ctx, opListReleaseLock, r.structOp(func(e *encoder) {
		e.int(idx)
		e.string(conn)
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteList) LockHolder(idx int) string {
	d, err := r.c.roundTrip(context.Background(), opListLockHolder, r.structOp(func(e *encoder) { e.int(idx) }))
	if err != nil {
		return ""
	}
	holder := d.string()
	if d.finish() != nil {
		return ""
	}
	return holder
}

func (r *remoteList) Write(ctx context.Context, conn string, list int, id, key string, data []byte, order cf.Order, cond cf.Cond) error {
	return r.c.call(ctx, opListWrite, r.structOp(func(e *encoder) {
		e.string(conn)
		e.int(list)
		e.string(id)
		e.string(key)
		e.bytes(data)
		e.int(int(order))
		e.cond(cond)
	}))
}

func (r *remoteList) Read(ctx context.Context, conn, id string, cond cf.Cond) (cf.ListEntry, error) {
	d, err := r.c.roundTrip(ctx, opListRead, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(id)
		e.cond(cond)
	}))
	if err != nil {
		return cf.ListEntry{}, err
	}
	le := d.listEntry()
	if err := d.finish(); err != nil {
		return cf.ListEntry{}, err
	}
	return le, nil
}

func (r *remoteList) ReadFirst(ctx context.Context, conn string, list int, cond cf.Cond) (cf.ListEntry, error) {
	d, err := r.c.roundTrip(ctx, opListReadFirst, r.structOp(func(e *encoder) {
		e.string(conn)
		e.int(list)
		e.cond(cond)
	}))
	if err != nil {
		return cf.ListEntry{}, err
	}
	le := d.listEntry()
	if err := d.finish(); err != nil {
		return cf.ListEntry{}, err
	}
	return le, nil
}

func (r *remoteList) Pop(ctx context.Context, conn string, list int, cond cf.Cond) (cf.ListEntry, error) {
	d, err := r.c.roundTrip(ctx, opListPop, r.structOp(func(e *encoder) {
		e.string(conn)
		e.int(list)
		e.cond(cond)
	}))
	if err != nil {
		return cf.ListEntry{}, err
	}
	le := d.listEntry()
	if err := d.finish(); err != nil {
		return cf.ListEntry{}, err
	}
	return le, nil
}

func (r *remoteList) Delete(ctx context.Context, conn, id string, cond cf.Cond) error {
	return r.c.call(ctx, opListDelete, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(id)
		e.cond(cond)
	}))
}

func (r *remoteList) Move(ctx context.Context, conn, id string, toList int, order cf.Order, cond cf.Cond) error {
	return r.c.call(ctx, opListMove, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(id)
		e.int(toList)
		e.int(int(order))
		e.cond(cond)
	}))
}

func (r *remoteList) SetAdjunct(ctx context.Context, conn, id, adjunct string, cond cf.Cond) error {
	return r.c.call(ctx, opListSetAdjunct, r.structOp(func(e *encoder) {
		e.string(conn)
		e.string(id)
		e.string(adjunct)
		e.cond(cond)
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteList) Len(list int) int {
	d, err := r.c.roundTrip(context.Background(), opListLen, r.structOp(func(e *encoder) { e.int(list) }))
	if err != nil {
		return 0
	}
	n := d.int()
	if d.finish() != nil {
		return 0
	}
	return n
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteList) Entries(list int) []cf.ListEntry {
	d, err := r.c.roundTrip(context.Background(), opListEntries, r.structOp(func(e *encoder) { e.int(list) }))
	if err != nil {
		return nil
	}
	es := d.listEntries()
	if d.finish() != nil {
		return nil
	}
	return es
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteList) TotalEntries() int {
	d, err := r.c.roundTrip(context.Background(), opListTotalEntries, r.structOp(nil))
	if err != nil {
		return 0
	}
	n := d.int()
	if d.finish() != nil {
		return 0
	}
	return n
}

func (r *remoteList) Monitor(ctx context.Context, conn string, list int, vecIdx int) error {
	return r.c.call(ctx, opListMonitor, r.structOp(func(e *encoder) {
		e.string(conn)
		e.int(list)
		e.int(vecIdx)
	}))
}

// lintctx: mirrors a context-free cf interface method; the round trip is bounded by the link lifetime, not a caller deadline.
func (r *remoteList) Unmonitor(conn string, list int) {
	_ = r.c.call(context.Background(), opListUnmonitor, r.structOp(func(e *encoder) {
		e.string(conn)
		e.int(list)
	}))
}

// Interface conformance.
var (
	_ cf.Node    = (*Client)(nil)
	_ cf.Lock    = (*remoteLock)(nil)
	_ cf.Cache   = (*remoteCache)(nil)
	_ cf.List    = (*remoteList)(nil)
	_ cf.Replica = (*remoteLock)(nil)
	_ cf.Replica = (*remoteCache)(nil)
	_ cf.Replica = (*remoteList)(nil)
)
