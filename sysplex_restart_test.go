package sysplex

import (
	"context"
	"fmt"
	"testing"

	"sysplex/internal/arm"
	"sysplex/internal/dasd"
	"sysplex/internal/logr"
)

// TestSysplexColdRestart is the end-to-end durability story: a sysplex
// built over a file-backed farm commits transactions and log records,
// the whole complex loses power (every un-synced write is dropped, the
// CF image is discarded), and sysplex.Open rebuilds the surviving
// member set from DASD alone — committed data intact, uncommitted work
// gone, stranded ARM elements re-driven, and the restart cost cut onto
// the RMF stream.
func TestSysplexColdRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := DefaultConfig("PLEX1", 2)
	cfg.DataDir = dir
	cfg.VolumeBlocks = 16384
	cfg.LogStreams = []logr.StreamSpec{{Name: "APP.AUDIT"}}

	plex, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := plex.System("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plex.System("SYS2")
	if err != nil {
		t.Fatal(err)
	}

	// Committed transactions from both members.
	want := map[string]string{}
	for i := 0; i < 6; i++ {
		e := s1.Engine()
		if i%2 == 1 {
			e = s2.Engine()
		}
		key, val := fmt.Sprintf("acct-%d", i), fmt.Sprintf("bal-%d", i*100)
		tx := e.Begin(ctx)
		if err := tx.Put("ACCT", key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	// An aborted transaction must not resurface.
	ghost := s2.Engine().Begin(ctx)
	if err := ghost.Put("ACCT", "ghost", []byte("boo")); err != nil {
		t.Fatal(err)
	}
	ghost.Abort()

	// Application log records on a dedicated stream.
	audit, err := s1.LogStream("APP.AUDIT")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := audit.Write(ctx, []byte(fmt.Sprintf("audit-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Power cut: un-synced writes drop, file handles close mid-state.
	// Stop afterwards only reaps goroutines — nothing it does can reach
	// the disk image any more.
	dasd.PowerCutFarm(plex.Farm())
	plex.Stop()

	// Only SYS1 returns. SYS2's ARM elements are stranded on a system
	// that is gone.
	cfg2 := cfg
	cfg2.Systems = cfg.Systems[:1]
	plex2, err := Open(ctx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer plex2.Stop()

	rep := plex2.RestartReport()
	if rep == nil {
		t.Fatal("Open left no RestartReport")
	}
	if rep.DB.Transactions == 0 || rep.DB.RedoApplied == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rep.DB)
	}
	if rep.LogRecords == 0 || rep.LogStreams == 0 {
		t.Fatalf("no log-stream recovery recorded: %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Fatalf("non-positive recovery duration %v", rep.Duration)
	}

	r1, err := plex2.System("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	tx := r1.Engine().Begin(ctx)
	for key, val := range want {
		v, ok, err := tx.Get("ACCT", key)
		if err != nil || !ok || string(v) != val {
			t.Fatalf("%s = %q ok=%v err=%v, want %q", key, v, ok, err, val)
		}
	}
	if _, ok, _ := tx.Get("ACCT", "ghost"); ok {
		t.Fatal("aborted transaction resurfaced after cold restart")
	}
	tx.Commit()

	// The audit stream recovered every acknowledged record, in order.
	audit2, err := r1.LogStream("APP.AUDIT")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := audit2.Browse(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for {
		r, ok := cur.Next()
		if !ok {
			break
		}
		if got[string(r.Data)] {
			t.Fatalf("duplicate audit record %q", r.Data)
		}
		got[string(r.Data)] = true
	}
	for i := 0; i < 5; i++ {
		if !got[fmt.Sprintf("audit-%d", i)] {
			t.Fatalf("audit-%d lost across restart (recovered %v)", i, got)
		}
	}

	// SYS2's cross-system elements were re-driven onto a survivor.
	for _, name := range []string{"DB2.SYS2", "CICS.SYS2"} {
		e, err := plex2.ARM().Element(name)
		if err != nil {
			t.Fatalf("stranded element %s not recovered from the ARM CDS: %v", name, err)
		}
		if e.State != arm.StateRunning || e.System != "SYS1" {
			t.Fatalf("%s = %v on %s, want running on SYS1", name, e.State, e.System)
		}
	}

	// The restart-recovery-time record landed on the RMF stream.
	if mon := plex2.RMF(); mon != nil {
		found := false
		for _, r := range mon.Latest(0) {
			if r.Restart != nil {
				found = true
				if r.Restart.RecoveryUS <= 0 || r.Restart.Transactions != rep.DB.Transactions {
					t.Fatalf("restart record %+v disagrees with report %+v", r.Restart, rep)
				}
			}
		}
		if !found {
			t.Fatal("no RMF record carries the restart section")
		}
	}
}

// TestOpenFreshDirectory: Open over an empty DataDir is a first boot —
// no recovery work, but a usable, durable sysplex.
func TestOpenFreshDirectory(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig("PLEX1", 1)
	cfg.DataDir = t.TempDir()
	cfg.VolumeBlocks = 16384
	cfg.Background = false

	plex, err := Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plex.Stop()
	rep := plex.RestartReport()
	if rep == nil {
		t.Fatal("Open left no RestartReport")
	}
	if rep.DB.Transactions != 0 || len(rep.Restarts) != 0 {
		t.Fatalf("fresh boot recovered state: %+v", rep)
	}
	s, err := plex.System("SYS1")
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Engine().Begin(ctx)
	if err := tx.Put("ACCT", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRequiresDataDir: Open without a directory is a usage error.
func TestOpenRequiresDataDir(t *testing.T) {
	if _, err := Open(context.Background(), DefaultConfig("PLEX1", 1)); err == nil {
		t.Fatal("Open without DataDir succeeded")
	}
}
