// Package sysplex is a from-scratch Go reproduction of the IBM S/390
// Parallel Sysplex architecture described in Nick, Chung & Bowen,
// "Overview of IBM System/390 Parallel Sysplex — A Commercial Parallel
// Processing System" (IPPS 1996).
//
// A Sysplex assembles every subsystem the paper describes: shared DASD
// with multi-path I/O and fencing, duplexed couple data sets, the
// sysplex timer, a Coupling Facility with lock/cache/list structures,
// XCF group and signalling services with heartbeat-driven fail-stop,
// WLM goal-driven workload management, ARM cross-system restart, an
// IRLM-style global lock manager, a data-sharing database manager with
// group buffer pools and peer recovery, a CICS-style transaction
// manager with dynamic routing, and VTAM generic resources for a
// single network image.
//
//	cfg := sysplex.DefaultConfig("PLEX1", 4)
//	plex, _ := sysplex.New(context.Background(), cfg)
//	defer plex.Stop()
//	plex.RegisterProgram("HELLO", 1, func(tx *db.Tx, in []byte) ([]byte, error) {
//	    return []byte("world"), nil
//	})
//	out, _ := plex.SubmitViaLogon(context.Background(), "HELLO", nil)
package sysplex

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sysplex/internal/arm"
	"sysplex/internal/cds"
	"sysplex/internal/cf"
	"sysplex/internal/cfrm"
	"sysplex/internal/dasd"
	"sysplex/internal/db"
	"sysplex/internal/jes"
	"sysplex/internal/lockmgr"
	"sysplex/internal/logr"
	"sysplex/internal/metrics"
	"sysplex/internal/racf"
	"sysplex/internal/rmf"
	"sysplex/internal/timer"
	"sysplex/internal/txmgr"
	"sysplex/internal/vclock"
	"sysplex/internal/vtam"
	"sysplex/internal/wlm"
	"sysplex/internal/xcf"
)

// Program is application logic run under a database transaction; it is
// registered identically on every system ("applications unchanged").
type Program = txmgr.Program

// Tx re-exports the database transaction handle used by programs.
type Tx = db.Tx

// Lock modes, re-exported for direct lock-manager use.
const (
	Share     = lockmgr.Share
	Exclusive = lockmgr.Exclusive
)

// Errors returned by the façade.
var (
	ErrNoSystem = errors.New("sysplex: no such system")
	ErrStopped  = errors.New("sysplex: sysplex stopped")
)

// GenericCICS is the generic resource name user logons resolve.
const GenericCICS = "CICS"

// TableConfig describes one shared table.
type TableConfig struct {
	Name  string
	Pages int
}

// SystemConfig describes one member system.
type SystemConfig struct {
	Name string
	// CPUs is the TCMP width (1..10).
	CPUs int
	// MIPSPerCPU scales WLM capacity (default 60, a mid-90s CMOS
	// engine).
	MIPSPerCPU float64
}

// Config describes a whole sysplex.
type Config struct {
	Name    string
	Systems []SystemConfig
	// DataDir, when set, backs the shared DASD farm with files under
	// this directory: volumes persist across process restarts, every
	// acknowledged log write and couple-data-set update is fsynced
	// (group commit), and sysplex.Open can cold-boot the sysplex from
	// whatever the previous incarnation left behind. Empty keeps the
	// farm in memory (the default, and the fast path).
	DataDir string
	// Tables are opened on every system.
	Tables []TableConfig
	// DatabaseName scopes structures and datasets (default "DBP1").
	DatabaseName string
	// LogStreams are additional System Logger streams connected on
	// every member system (the database's WAL streams are always
	// created). Reach them via System.LogStream(name).
	LogStreams []logr.StreamSpec
	// VolumeBlocks sizes the shared volume (default 131072; log-stream
	// offload datasets chain indefinitely, so the volume is generous).
	VolumeBlocks int
	// LockTableEntries sizes the CF lock structure (default 4096).
	LockTableEntries int
	// PoolFrames per system local buffer pool (default 256).
	PoolFrames int
	// LogBlocks per system (default 1024).
	LogBlocks int
	// LockTimeout for database locks (default 5s).
	LockTimeout time.Duration
	// HeartbeatInterval / FailureDetectionInterval drive XCF status
	// monitoring (defaults 10ms / 150ms — fast detection for
	// experiments while tolerating couple-data-set serialization
	// bursts; production z/OS defaults are seconds).
	HeartbeatInterval        time.Duration
	FailureDetectionInterval time.Duration
	// Background starts heartbeat/monitor/WLM-exchange/castout loops
	// for each system (default true via DefaultConfig).
	Background bool
	// DisableRMF opts out of the RMF measurement subsystem. By default
	// (when Background is true) an interval monitor samples every
	// layer and writes SMF-style records to the SYSPLEX.RMF.DATA log
	// stream; reach it via RMF().
	DisableRMF bool
	// RMFInterval is the measurement interval (default
	// rmf.DefaultInterval).
	RMFInterval time.Duration
	// CF is the CFRM policy governing the coupling-facility fleet:
	// candidate preference list, structure duplexing mode, injected
	// command latency. The zero value runs structures duplexed across
	// CF01/CF02 with CF03 as the re-duplex candidate.
	CF cfrm.Policy
	// Policy is the WLM service definition.
	Policy wlm.Policy
}

// DefaultConfig returns a ready-to-run configuration with n systems
// (SYS1..SYSn), one table, and background services enabled.
func DefaultConfig(name string, n int) Config {
	cfg := Config{
		Name:       name,
		Background: true,
		Tables:     []TableConfig{{Name: "ACCT", Pages: 64}},
		Policy: wlm.Policy{Name: "STANDARD", Goals: []wlm.Goal{
			{Class: txmgr.ServiceClass, Importance: 1, AvgResponse: 100 * time.Millisecond},
		}},
	}
	for i := 1; i <= n; i++ {
		cfg.Systems = append(cfg.Systems, SystemConfig{Name: fmt.Sprintf("SYS%d", i), CPUs: 1})
	}
	return cfg
}

// System bundles one member's subsystem instances.
type System struct {
	name    string
	xsys    *xcf.System
	tod     *timer.LocalTOD
	locks   *lockmgr.Manager
	engine  *db.Engine
	wlm     *wlm.Manager
	region  *txmgr.Region
	jesExec *jes.Executor
	sec     *racf.Manager
	logger  *logr.Manager

	stopBg []func()
}

// Security exposes the RACF-style security manager.
func (s *System) Security() *racf.Manager { return s.sec }

// Logger exposes the System Logger instance.
func (s *System) Logger() *logr.Manager { return s.logger }

// LogStream returns a connected log stream by name (the database WAL
// streams plus any Config.LogStreams).
func (s *System) LogStream(name string) (*logr.Stream, error) {
	return s.logger.Stream(name)
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Region exposes the CICS-style transaction manager.
func (s *System) Region() *txmgr.Region { return s.region }

// Engine exposes the database manager instance.
func (s *System) Engine() *db.Engine { return s.engine }

// Locks exposes the lock manager.
func (s *System) Locks() *lockmgr.Manager { return s.locks }

// WLM exposes the workload manager.
func (s *System) WLM() *wlm.Manager { return s.wlm }

// TOD exposes the system's sysplex-steered clock.
func (s *System) TOD() *timer.LocalTOD { return s.tod }

// Sysplex is a running parallel sysplex.
type Sysplex struct {
	cfg    Config
	clock  vclock.Clock
	farm   *dasd.Farm
	timer  *timer.Timer
	store  *cds.Store
	plex   *xcf.Sysplex
	cfres  *cfrm.Manager
	front  cf.Front
	lockS  cf.Lock
	net    *vtam.Network
	arm    *arm.Manager
	det    *lockmgr.Detector
	jesQ   *jes.Queue
	racfDB *cds.Store
	armCDS *cds.Store
	logReg *metrics.Registry // shared by every member's logr.Manager
	rmfMon *rmf.Monitor      // nil when RMF is disabled

	mu       sync.Mutex
	systems  map[string]*System
	programs map[string]programSpec
	jobs     map[string]jes.Handler
	stopped  bool
	recovery []db.RecoveryReport
	restart  *RestartReport
	stopCF   func()
}

// RestartReport summarizes the recovery pass of one sysplex.Open cold
// boot: what each layer rebuilt from DASD and how long the whole pass
// took.
type RestartReport struct {
	// Duration is wall time from the first volume reattach to the end
	// of the recovery pass.
	Duration time.Duration
	// LogStreams/LogRecords count System Logger streams that needed
	// cold recovery and staged records re-inserted into interim
	// storage.
	LogStreams int64
	LogRecords int64
	// DB is the database redo pass over the merged WAL streams.
	DB db.ColdReport
	// Restarts are the ARM elements re-driven because their recorded
	// system did not return.
	Restarts []arm.RestartEvent
}

type programSpec struct {
	service float64
	fn      Program
}

// New builds and starts a sysplex. The context governs the CF commands
// issued while building the initial member set; it is not retained.
// With Config.DataDir set the DASD farm is file-backed from the start,
// so a later sysplex.Open over the same directory can cold-boot from
// whatever this incarnation leaves behind.
func New(ctx context.Context, cfg Config) (*Sysplex, error) {
	return build(ctx, cfg, false)
}

// Open cold-boots a sysplex from the durable state under
// Config.DataDir: volumes reattach, couple data sets and the catalog
// reload from their checksummed on-disk images, System Logger streams
// rebuild their interim storage from the staging datasets, the
// database redoes committed transactions from the merged WAL streams,
// and ARM re-drives elements whose recorded system did not return. A
// restart-recovery-time record is cut onto the RMF stream, and the
// pass is summarized by RestartReport. On a directory with no prior
// state Open is equivalent to New.
func Open(ctx context.Context, cfg Config) (*Sysplex, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("sysplex: Open requires Config.DataDir")
	}
	return build(ctx, cfg, true)
}

func build(ctx context.Context, cfg Config, reopen bool) (*Sysplex, error) {
	if cfg.Name == "" {
		return nil, errors.New("sysplex: name required")
	}
	if cfg.DatabaseName == "" {
		cfg.DatabaseName = "DBP1"
	}
	if cfg.VolumeBlocks == 0 {
		// Room for table spaces, couple data sets, and log-stream
		// offload dataset chains (blocks are lazily materialized, so
		// this is cheap).
		cfg.VolumeBlocks = 131072
	}
	if cfg.LockTableEntries == 0 {
		cfg.LockTableEntries = 4096
	}
	if cfg.PoolFrames == 0 {
		cfg.PoolFrames = 256
	}
	if cfg.LogBlocks == 0 {
		cfg.LogBlocks = 1024
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	}
	if cfg.FailureDetectionInterval == 0 {
		cfg.FailureDetectionInterval = 15 * cfg.HeartbeatInterval
	}
	rmfOn := cfg.Background && !cfg.DisableRMF
	if rmfOn {
		// Every member connects to the RMF stream so the monitor can
		// write through any surviving system.
		have := false
		for _, spec := range cfg.LogStreams {
			if spec.Name == rmf.StreamName {
				have = true
			}
		}
		if !have {
			cfg.LogStreams = append(cfg.LogStreams, logr.StreamSpec{Name: rmf.StreamName})
		}
	}
	clock := vclock.Real()
	bootStart := clock.Now()
	var farm *dasd.Farm
	if cfg.DataDir != "" {
		var err error
		if farm, err = dasd.OpenFarm(clock, cfg.DataDir); err != nil {
			return nil, err
		}
	} else {
		farm = dasd.NewFarm(clock)
	}
	p := &Sysplex{
		cfg:      cfg,
		clock:    clock,
		farm:     farm,
		timer:    timer.New(clock),
		systems:  make(map[string]*System),
		programs: make(map[string]programSpec),
		jobs:     make(map[string]jes.Handler),
		logReg:   metrics.NewRegistry(),
	}

	// Shared DASD (Figure 1: disks fully connected to all processors).
	// Couple data sets live on dedicated volumes — standard practice,
	// because CDS serialization uses hardware reserves that block other
	// systems' I/O to the whole device.
	if _, err := p.farm.AddVolume("SYSP01", cfg.VolumeBlocks, 4); err != nil {
		return nil, err
	}
	if _, err := p.farm.AddVolume("SYSP02", cfg.VolumeBlocks, 4); err != nil {
		return nil, err
	}
	if _, err := p.farm.AddVolume("CPLEX1", 512, 4); err != nil {
		return nil, err
	}
	if _, err := p.farm.AddVolume("CPLEX2", 512, 4); err != nil {
		return nil, err
	}
	// Duplexed sysplex couple data set across the dedicated volumes.
	// allocOrAttach finds the persisted datasets on a reopened farm.
	pri, err := p.allocOrAttach("CPLEX1", "SYS1.XCF.CDS01", 256)
	if err != nil {
		return nil, err
	}
	alt, err := p.allocOrAttach("CPLEX2", "SYS1.XCF.CDS02", 256)
	if err != nil {
		return nil, err
	}
	// XCF context first, so the CDS can break reserves of failed systems.
	p.store, err = cds.New(cfg.Name+".CDS", clock, pri, alt, cds.Options{
		StaleHolder: func(sys string) bool { return p.plex != nil && p.plex.IsFailed(sys) },
	})
	if err != nil {
		return nil, err
	}
	p.plex = xcf.NewSysplex(cfg.Name, clock, p.store, p.farm, xcf.Options{
		HeartbeatInterval:        cfg.HeartbeatInterval,
		FailureDetectionInterval: cfg.FailureDetectionInterval,
	})

	// Coupling facility fleet under CFRM policy (Figure 2): structures
	// are allocated through the duplexing front, not a raw facility.
	p.cfres, err = cfrm.New(cfg.CF, clock)
	if err != nil {
		return nil, err
	}
	p.front = p.cfres.Front()
	p.lockS, err = p.front.AllocateLockStructure("IRLM."+cfg.DatabaseName, cfg.LockTableEntries)
	if err != nil {
		return nil, err
	}
	grList, err := p.front.AllocateListStructure("ISTGENERIC", 16, 1, 4096)
	if err != nil {
		return nil, err
	}
	p.net, err = vtam.New(ctx, grList, p.routeWeights)
	if err != nil {
		return nil, err
	}
	// JES2-style shared job queue checkpoint (§5.1 base exploiter).
	jesList, err := p.front.AllocateListStructure("JES2CKPT", 3, 1, 8192)
	if err != nil {
		return nil, err
	}
	p.jesQ, err = jes.NewQueue(ctx, jesList, "JES")
	if err != nil {
		return nil, err
	}
	// RACF-style shared security: database on a dedicated volume (its
	// serialization must not contend with the XCF couple data set) and
	// a CF cache structure for sysplex-wide profile coherency.
	if _, err := p.farm.AddVolume("RACF01", 512, 4); err != nil {
		return nil, err
	}
	racfDS, err := p.allocOrAttach("RACF01", "SYS1.RACF.DB", 256)
	if err != nil {
		return nil, err
	}
	p.racfDB, err = cds.New("RACFDB", clock, racfDS, nil, cds.Options{
		StaleHolder: func(sys string) bool { return p.plex != nil && p.plex.IsFailed(sys) },
	})
	if err != nil {
		return nil, err
	}
	if _, err := p.front.AllocateCacheStructure("IRRXCF00", 1024); err != nil {
		return nil, err
	}

	// Failure wiring, ordered: (1) CF connector cleanup + network
	// cleanup, then (2) ARM-driven cross-system restart & DB recovery.
	p.plex.OnSystemFailed(func(sys string) {
		// Failure recovery runs under a background context: it is driven
		// by XCF monitoring, not by any cancellable caller.
		bg := context.Background()
		p.front.FailConnector(sys)
		p.net.CleanupSystem(bg, sys)
		p.jesQ.RequeueOrphans(bg, sys)
		// LOGR peer takeover: FailConnector just cleared the dead
		// system's offload locks, so any survivor can finish offloads
		// it left mid-flight.
		p.mu.Lock()
		var survivor *System
		for _, s := range p.systems {
			if s.name != sys && p.plex.State(s.name) == xcf.StateActive {
				survivor = s
				break
			}
		}
		p.mu.Unlock()
		if survivor != nil {
			survivor.logger.TakeoverFailed(context.Background(), sys)
		}
		// A failed system stops contributing clone sections (RMF would
		// stop receiving its SMF data).
		p.mu.Lock()
		mon := p.rmfMon
		p.mu.Unlock()
		if mon != nil {
			mon.RemoveSystem(sys)
		}
	})
	// ARM couple data set, duplexed like the sysplex CDS: element state
	// survives a whole-sysplex outage so Open can re-drive restarts for
	// work that was running on systems that never came back. It gets
	// its own volume pair — the XCF couple data set's heartbeat traffic
	// holds hardware reserves on CPLEX1/CPLEX2, and ARM updates must
	// not collide with them.
	if _, err := p.farm.AddVolume("ARMCD1", 512, 4); err != nil {
		return nil, err
	}
	if _, err := p.farm.AddVolume("ARMCD2", 512, 4); err != nil {
		return nil, err
	}
	armPri, err := p.allocOrAttach("ARMCD1", "SYS1.ARM.CDS01", 128)
	if err != nil {
		return nil, err
	}
	armAlt, err := p.allocOrAttach("ARMCD2", "SYS1.ARM.CDS02", 128)
	if err != nil {
		return nil, err
	}
	p.armCDS, err = cds.New("ARMCDS", clock, armPri, armAlt, cds.Options{
		StaleHolder: func(sys string) bool { return p.plex != nil && p.plex.IsFailed(sys) },
	})
	if err != nil {
		return nil, err
	}
	p.arm = arm.New(p.plex, p.armCDS, p.pickRestartTarget)
	p.det = lockmgr.NewDetector(p.lockManagers)

	for _, sc := range cfg.Systems {
		if _, err := p.AddSystem(ctx, sc); err != nil {
			return nil, err
		}
	}

	// CF health monitoring: the same status-monitoring cadence XCF uses
	// for member systems also watches the CF fleet, routing failures
	// into CFRM so failover does not wait for a command to trip over
	// the dead facility.
	if cfg.Background {
		probe := clock.NewTicker(cfg.FailureDetectionInterval)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-done:
					return
				case <-probe.C():
					p.cfres.ProbeOnce()
				}
			}
		}()
		var once sync.Once
		p.stopCF = func() {
			once.Do(func() {
				probe.Stop()
				close(done)
			})
		}
	}

	// RMF measurement subsystem: interval records onto SYSPLEX.RMF.DATA.
	if rmfOn {
		mon, err := rmf.New(rmf.Config{
			Farm: cfg.Name, Clock: clock, Interval: cfg.RMFInterval,
			CFRM: p.cfres, Logger: p.logReg, DASD: p.farm.Metrics(),
			Stream: p.rmfStream,
		})
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.rmfMon = mon
		systems := make([]*System, 0, len(p.systems))
		for _, s := range p.systems {
			systems = append(systems, s)
		}
		p.mu.Unlock()
		for _, s := range systems {
			mon.AddSystem(s.name, systemSource(s))
		}
		mon.Start()
	}

	// Cold-boot recovery pass. Stream-level recovery already ran inside
	// each member's logr.Connect; what is left is the database redo over
	// the recovered streams and ARM re-drive for systems that did not
	// return, then the restart-recovery-time RMF record.
	if reopen {
		if err := p.recoverCold(ctx, bootStart); err != nil {
			p.Stop()
			return nil, err
		}
	}
	return p, nil
}

// recoverCold runs Open's recovery pass (see Open). bootStart is when
// the farm reattached, so the report covers the whole boot.
func (p *Sysplex) recoverCold(ctx context.Context, bootStart time.Time) error {
	rep := &RestartReport{
		LogStreams: p.logReg.Counter("logr.recover.streams").Value(),
		LogRecords: p.logReg.Counter("logr.recover.records").Value(),
	}
	// Database redo runs through one engine: pages externalize in the
	// shared group buffer pool, so every member sees the result.
	names := make([]string, 0, len(p.systems))
	p.mu.Lock()
	for n := range p.systems {
		names = append(names, n)
	}
	p.mu.Unlock()
	sort.Strings(names)
	if len(names) > 0 {
		s, err := p.System(names[0])
		if err != nil {
			return err
		}
		if rep.DB, err = s.engine.RecoverCold(ctx); err != nil {
			return fmt.Errorf("sysplex: cold recovery: %w", err)
		}
	}
	// ARM: merge persisted element state (elements re-registered by
	// AddSystem keep their fresh records; only elements of absent
	// systems load from the CDS) and re-drive the stale ones.
	if err := p.arm.LoadState(); err != nil {
		return fmt.Errorf("sysplex: cold recovery: ARM state: %w", err)
	}
	rep.Restarts = p.arm.RecoverPending()
	rep.Duration = p.clock.Now().Sub(bootStart)
	p.mu.Lock()
	p.restart = rep
	mon := p.rmfMon
	p.mu.Unlock()
	if mon != nil {
		if _, err := mon.CutRestart(ctx, rmf.RestartSection{
			RecoveryUS:   rep.Duration.Microseconds(),
			LogStreams:   rep.LogStreams,
			LogRecords:   rep.LogRecords,
			Transactions: rep.DB.Transactions,
			RedoApplied:  rep.DB.RedoApplied,
			Restarts:     len(rep.Restarts),
		}); err != nil {
			return err
		}
	}
	return nil
}

// RestartReport returns the summary of Open's recovery pass (nil when
// the sysplex was built by New).
func (p *Sysplex) RestartReport() *RestartReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restart
}

// allocOrAttach finds a cataloged dataset on a reopened durable farm,
// allocating it on first boot (or on an in-memory farm).
func (p *Sysplex) allocOrAttach(volser, name string, nblocks int) (*dasd.Dataset, error) {
	if ds, err := p.farm.Dataset(name); err == nil {
		return ds, nil
	}
	return p.farm.Allocate(volser, name, nblocks)
}

// systemSource adapts a member system into the RMF monitor's inputs.
func systemSource(s *System) rmf.SystemSource {
	return rmf.SystemSource{
		LockStats: s.locks.Stats,
		Util:      s.wlm.Utilization,
		Goals:     rmf.WLMGoals(s.wlm),
	}
}

// rmfStream picks a connected RMF stream handle from an active member
// (any member's handle works: the stream is sysplex-merged). Called by
// the monitor once per interval, so it follows failures and removals.
func (p *Sysplex) rmfStream() *logr.Stream {
	p.mu.Lock()
	systems := make([]*System, 0, len(p.systems))
	for _, s := range p.systems {
		systems = append(systems, s)
	}
	p.mu.Unlock()
	sort.Slice(systems, func(i, j int) bool { return systems[i].name < systems[j].name })
	for _, s := range systems {
		if p.plex.State(s.name) != xcf.StateActive {
			continue
		}
		if st, err := s.logger.Stream(rmf.StreamName); err == nil {
			return st
		}
	}
	return nil
}

// routeWeights supplies WLM weights to VTAM generic resources.
func (p *Sysplex) routeWeights() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.systems {
		if p.plex.State(s.name) == xcf.StateActive {
			return s.wlm.RouteWeights()
		}
	}
	return nil
}

// pickRestartTarget asks WLM for the best restart system.
func (p *Sysplex) pickRestartTarget(exclude map[string]bool) (string, error) {
	p.mu.Lock()
	var mgr *wlm.Manager
	for _, s := range p.systems {
		if !exclude[s.name] && p.plex.State(s.name) == xcf.StateActive {
			mgr = s.wlm
			break
		}
	}
	p.mu.Unlock()
	if mgr == nil {
		return "", arm.ErrNoTarget
	}
	avail := mgr.AvailableCapacity()
	best, bestAvail := "", -1.0
	names := make([]string, 0, len(avail))
	for n := range avail {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if exclude[n] || p.plex.State(n) != xcf.StateActive {
			continue
		}
		if avail[n] > bestAvail {
			best, bestAvail = n, avail[n]
		}
	}
	if best == "" {
		return "", arm.ErrNoTarget
	}
	return best, nil
}

func (p *Sysplex) lockManagers() []*lockmgr.Manager {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*lockmgr.Manager, 0, len(p.systems))
	for _, s := range p.systems {
		if p.plex.State(s.name) == xcf.StateActive {
			out = append(out, s.locks)
		}
	}
	return out
}

// AddSystem introduces a new system into the running sysplex —
// non-disruptively, per §2.4: existing systems keep executing and the
// newcomer becomes a full participant in workload balancing.
func (p *Sysplex) AddSystem(ctx context.Context, sc SystemConfig) (*System, error) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return nil, ErrStopped
	}
	p.mu.Unlock()
	if sc.CPUs <= 0 {
		sc.CPUs = 1
	}
	if sc.CPUs > 10 {
		return nil, fmt.Errorf("sysplex: %q: a system is a 1-10 way TCMP", sc.Name)
	}
	if sc.MIPSPerCPU == 0 {
		sc.MIPSPerCPU = 60
	}
	xsys, err := p.plex.Join(sc.Name)
	if err != nil {
		return nil, err
	}
	// Heartbeats must flow from the moment of joining: building the
	// subsystem stack below can take longer than the failure detection
	// interval on a loaded host, and a silent newcomer would be
	// partitioned right back out.
	var stopXCF func()
	built := false
	if p.cfg.Background {
		stopXCF = xsys.StartBackground()
		defer func() {
			if !built {
				stopXCF()
				xsys.Leave()
			}
		}()
	}
	p.mu.Lock()
	lockS, front := p.lockS, p.front
	p.mu.Unlock()
	locks, err := lockmgr.New(ctx, xsys, lockS, p.clock)
	if err != nil {
		return nil, err
	}
	logger, err := logr.New(logr.Config{
		System: sc.Name, Front: front, Farm: p.farm, Volume: "SYSP01",
		Timer: p.timer, Clock: p.clock, Metrics: p.logReg,
	})
	if err != nil {
		return nil, err
	}
	for _, spec := range p.cfg.LogStreams {
		if _, err := logger.Connect(ctx, spec); err != nil {
			return nil, err
		}
	}
	engine, err := db.Open(ctx, db.Config{
		Name: p.cfg.DatabaseName, System: sc.Name, Farm: p.farm, Volume: "SYSP01",
		Facility: front, Locks: locks, Clock: p.clock, Logger: logger,
		PoolFrames: p.cfg.PoolFrames, LogBlocks: p.cfg.LogBlocks,
		LockTimeout: p.cfg.LockTimeout,
	})
	if err != nil {
		return nil, err
	}
	for _, tc := range p.cfg.Tables {
		if err := engine.OpenTable(ctx, tc.Name, tc.Pages); err != nil {
			return nil, err
		}
	}
	wm, err := wlm.New(xsys, float64(sc.CPUs)*sc.MIPSPerCPU, p.cfg.Policy, p.clock)
	if err != nil {
		return nil, err
	}
	region := txmgr.New(xsys, engine, wm, p.clock, txmgr.Options{})
	jesList, err := front.ListStructure("JES2CKPT")
	if err != nil {
		return nil, err
	}
	jesExec, err := jes.NewExecutor(ctx, jesList, sc.Name, p.clock)
	if err != nil {
		return nil, err
	}
	secCache, err := front.CacheStructure("IRRXCF00")
	if err != nil {
		return nil, err
	}
	sec, err := racf.New(ctx, sc.Name, secCache, p.racfDB, 256)
	if err != nil {
		return nil, err
	}
	s := &System{
		name:    sc.Name,
		xsys:    xsys,
		tod:     timer.NewLocalTOD(sc.Name, p.timer),
		locks:   locks,
		engine:  engine,
		wlm:     wm,
		region:  region,
		jesExec: jesExec,
		sec:     sec,
		logger:  logger,
	}

	// Register already-known programs and job classes on the newcomer.
	p.mu.Lock()
	for name, spec := range p.programs {
		region.RegisterProgram(name, spec.service, spec.fn)
	}
	for class, h := range p.jobs {
		jesExec.Register(class, h)
	}
	p.systems[sc.Name] = s
	p.mu.Unlock()

	// Single network image: the region appears under the generic name.
	if err := p.net.Register(ctx, GenericCICS, "CICS."+sc.Name, sc.Name); err != nil {
		return nil, err
	}
	// ARM elements: the database instance restarts cross-system (its
	// restarter performs peer recovery on the target), the region
	// restarts with it in the same restart group.
	dbElem := "DB2." + sc.Name
	cicsElem := "CICS." + sc.Name
	group := "GRP." + sc.Name
	p.arm.Register(dbElem, sc.Name, arm.ElementPolicy{CrossSystem: true, RestartGroup: group, Level: 1})
	p.arm.Register(cicsElem, sc.Name, arm.ElementPolicy{CrossSystem: true, RestartGroup: group, Level: 2})
	p.bindRestarter(sc.Name)

	built = true
	if p.cfg.Background {
		s.stopBg = append(s.stopBg, stopXCF)
		p.startBackground(s)
	}
	p.mu.Lock()
	mon := p.rmfMon
	p.mu.Unlock()
	if mon != nil {
		mon.AddSystem(sc.Name, systemSource(s))
	}
	return s, nil
}

// bindRestarter installs ARM restart processing on a target system:
// restarting a failed database element means performing peer recovery
// for its system's in-flight work.
func (p *Sysplex) bindRestarter(target string) {
	p.arm.BindRestarter(target, func(e arm.Element) error {
		p.mu.Lock()
		s := p.systems[target]
		p.mu.Unlock()
		if s == nil {
			return fmt.Errorf("sysplex: restarter: no subsystems on %s", target)
		}
		var failedSys string
		fmt.Sscanf(e.Name, "DB2.%s", &failedSys)
		if failedSys != "" && failedSys != target {
			rep, err := s.engine.RecoverPeer(context.Background(), failedSys)
			if err != nil {
				return err
			}
			p.mu.Lock()
			p.recovery = append(p.recovery, rep)
			p.mu.Unlock()
		}
		return nil
	})
}

// startBackground launches the non-XCF background services (XCF
// heartbeats were already started at join time by AddSystem).
func (p *Sysplex) startBackground(s *System) {
	s.jesExec.Start(2 * time.Millisecond)
	s.stopBg = append(s.stopBg, s.jesExec.Stop)

	exchange := p.clock.NewTicker(20 * time.Millisecond)
	castout := p.clock.NewTicker(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-exchange.C():
				if p.plex.State(s.name) == xcf.StateActive {
					s.wlm.ExchangeOnce()
				}
			case <-castout.C():
				if p.plex.State(s.name) == xcf.StateActive {
					s.engine.CastoutOnce(context.Background(), 64)
				}
			}
		}
	}()
	var once sync.Once
	s.stopBg = append(s.stopBg, func() {
		once.Do(func() {
			exchange.Stop()
			castout.Stop()
			close(done)
		})
	})
}

// Name returns the sysplex name.
func (p *Sysplex) Name() string { return p.cfg.Name }

// Farm exposes the shared DASD farm.
func (p *Sysplex) Farm() *dasd.Farm { return p.farm }

// Facility exposes the current *primary* coupling facility as a CF
// node (an in-process facility, or a cflink client when the policy
// names a remote fleet — the one serving reads either way). Structure
// commands flow through the CFRM front — use CFRM() for fleet state
// and duplexing metrics.
func (p *Sysplex) Facility() cf.Node {
	return p.cfres.Primary()
}

// CFRM exposes the coupling-facility resource manager: policy, fleet
// status, failure reporting, and duplexing/failover metrics.
func (p *Sysplex) CFRM() *cfrm.Manager { return p.cfres }

// RebuildCouplingFacility performs a planned structure rebuild: every
// structure moves off the current primary facility (maintenance, or
// recovery back to redundancy after a failure) with no service
// interruption. It is a thin call into the CFRM state machine:
//
//  1. if the structures are simplex, CFRM first duplexes them into a
//     fresh candidate facility — a system-managed copy of every
//     structure's state, all-or-nothing: on any error the old facility
//     stays current and intact;
//  2. the secondary is promoted to primary and the old facility is
//     retired (never reused);
//  3. under a duplexing policy, CFRM synchronously re-duplexes into the
//     next candidate so the rebuild ends with full redundancy.
//
// Connectors never rebind: they hold the CFRM front, which re-targets
// commands to the new pair. Transactions keep flowing throughout.
func (p *Sysplex) RebuildCouplingFacility() error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return ErrStopped
	}
	p.mu.Unlock()
	return p.cfres.Rebuild()
}

// XCF exposes the base sysplex services.
func (p *Sysplex) XCF() *xcf.Sysplex { return p.plex }

// ARM exposes the automatic restart manager.
func (p *Sysplex) ARM() *arm.Manager { return p.arm }

// Network exposes the VTAM generic resource image.
func (p *Sysplex) Network() *vtam.Network { return p.net }

// Timer exposes the sysplex timer.
func (p *Sysplex) Timer() *timer.Timer { return p.timer }

// Clock exposes the sysplex clock, e.g. for building virtual-clock
// deadlines with vclock.WithTimeout (DESIGN §10).
func (p *Sysplex) Clock() vclock.Clock { return p.clock }

// RMF exposes the measurement subsystem's monitor: interval records,
// rollups, and the HTTP handler. Nil when Background is false or
// Config.DisableRMF is set.
func (p *Sysplex) RMF() *rmf.Monitor {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rmfMon
}

// LoggerMetrics exposes the sysplex-wide logr.* instrumentation
// (every member's System Logger charges the same registry).
func (p *Sysplex) LoggerMetrics() *metrics.Registry { return p.logReg }

// CoupleDataSet exposes the sysplex couple data set.
func (p *Sysplex) CoupleDataSet() *cds.Store { return p.store }

// DeadlockDetector exposes the sysplex-wide lock deadlock detector.
func (p *Sysplex) DeadlockDetector() *lockmgr.Detector { return p.det }

// System returns a member by name.
func (p *Sysplex) System(name string) (*System, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.systems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSystem, name)
	}
	return s, nil
}

// ActiveSystems lists active member names, sorted.
func (p *Sysplex) ActiveSystems() []string { return p.plex.ActiveSystems() }

// RecoveryReports returns the peer-recovery reports performed so far.
func (p *Sysplex) RecoveryReports() []db.RecoveryReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]db.RecoveryReport(nil), p.recovery...)
}

// RegisterProgram installs application logic on every system, present
// and future.
func (p *Sysplex) RegisterProgram(name string, serviceMIPSsec float64, fn Program) {
	p.mu.Lock()
	p.programs[name] = programSpec{service: serviceMIPSsec, fn: fn}
	systems := make([]*System, 0, len(p.systems))
	for _, s := range p.systems {
		systems = append(systems, s)
	}
	p.mu.Unlock()
	for _, s := range systems {
		s.region.RegisterProgram(name, serviceMIPSsec, fn)
	}
}

// RegisterJobClass installs batch job logic on every system's JES
// executor, present and future.
func (p *Sysplex) RegisterJobClass(class string, h jes.Handler) {
	p.mu.Lock()
	p.jobs[class] = h
	systems := make([]*System, 0, len(p.systems))
	for _, s := range p.systems {
		systems = append(systems, s)
	}
	p.mu.Unlock()
	for _, s := range systems {
		s.jesExec.Register(class, h)
	}
}

// SubmitJob places a batch job on the shared JES queue; any system may
// run it.
func (p *Sysplex) SubmitJob(ctx context.Context, class string, payload []byte) (string, error) {
	return p.jesQ.Submit(ctx, class, payload, "USER")
}

// JobResult fetches a completed job.
func (p *Sysplex) JobResult(ctx context.Context, id string) (jes.Job, error) {
	return p.jesQ.Result(ctx, id)
}

// WaitJob polls for a job's completion up to timeout; a cancelled or
// deadline-expired context ends the wait early.
func (p *Sysplex) WaitJob(ctx context.Context, id string, timeout time.Duration) (jes.Job, error) {
	deadline := p.clock.Now().Add(timeout)
	for {
		if err := vclock.Check(ctx, p.clock); err != nil {
			return jes.Job{}, err
		}
		job, err := p.jesQ.Result(ctx, id)
		if err == nil {
			return job, nil
		}
		if !errors.Is(err, jes.ErrNotDone) && !errors.Is(err, jes.ErrNotFound) {
			return jes.Job{}, err
		}
		if !p.clock.Now().Before(deadline) {
			return jes.Job{}, fmt.Errorf("sysplex: job %s: timeout", id)
		}
		p.clock.Sleep(time.Millisecond)
	}
}

// JES exposes the shared job queue.
func (p *Sysplex) JES() *jes.Queue { return p.jesQ }

// Submit runs a transaction entering at the named system (it may still
// be dynamically routed elsewhere).
func (p *Sysplex) Submit(ctx context.Context, system, program string, input []byte) ([]byte, error) {
	s, err := p.System(system)
	if err != nil {
		return nil, err
	}
	return s.region.Submit(ctx, program, input)
}

// SubmitViaLogon resolves the generic resource name to an instance
// (the user "just logs on to CICS") and submits there. A bind that
// races with a system leaving or failing is re-driven onto a survivor,
// as VTAM does for session binds.
func (p *Sysplex) SubmitViaLogon(ctx context.Context, program string, input []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		sess, err := p.net.Logon(ctx, GenericCICS)
		if err != nil {
			return nil, err
		}
		out, err := p.Submit(ctx, sess.System, program, input)
		p.net.Logoff(vclock.Detach(ctx), sess.ID)
		if err == nil {
			return out, nil
		}
		if errors.Is(err, ErrNoSystem) || errors.Is(err, xcf.ErrSystemDown) {
			lastErr = err // stale bind: re-drive the logon
			continue
		}
		return nil, err
	}
	return nil, lastErr
}

// ParallelQuery fans a table scan across all active systems (§2.3
// decision support) and aggregates the sub-query answers.
func (p *Sysplex) ParallelQuery(ctx context.Context, table, op, prefix string) (txmgr.QueryResult, error) {
	active := p.ActiveSystems()
	if len(active) == 0 {
		return txmgr.QueryResult{}, ErrStopped
	}
	s, err := p.System(active[0])
	if err != nil {
		return txmgr.QueryResult{}, err
	}
	return s.region.ParallelQuery(ctx, active, table, op, prefix)
}

// KillSystem simulates abrupt loss of a system: it stops cold, and the
// surviving systems' heartbeat monitoring detects, partitions, fences,
// and recovers it (background mode), exactly the §2.5 scenario.
func (p *Sysplex) KillSystem(name string) error {
	s, err := p.System(name)
	if err != nil {
		return err
	}
	for _, stop := range s.stopBg {
		stop()
	}
	s.xsys.Kill()
	return nil
}

// PartitionSystem forces immediate partition (deterministic variant of
// KillSystem for tests and demos without waiting for detection).
func (p *Sysplex) PartitionSystem(name string) error {
	s, err := p.System(name)
	if err != nil {
		return err
	}
	for _, stop := range s.stopBg {
		stop()
	}
	s.xsys.Kill()
	p.plex.PartitionNow(name)
	return nil
}

// RemoveSystem performs a planned removal (§2.5 planned outage): the
// system leaves gracefully, its network presence is withdrawn, and no
// fencing or recovery is needed.
func (p *Sysplex) RemoveSystem(ctx context.Context, name string) error {
	s, err := p.System(name)
	if err != nil {
		return err
	}
	for _, stop := range s.stopBg {
		stop()
	}
	p.net.Deregister(ctx, GenericCICS, "CICS."+name)
	p.arm.Deregister("DB2." + name)
	p.arm.Deregister("CICS." + name)
	s.xsys.Leave()
	p.mu.Lock()
	delete(p.systems, name)
	mon := p.rmfMon
	p.mu.Unlock()
	if mon != nil {
		mon.RemoveSystem(name)
	}
	return nil
}

// Stop shuts the sysplex down.
func (p *Sysplex) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	systems := make([]*System, 0, len(p.systems))
	for _, s := range p.systems {
		systems = append(systems, s)
	}
	stopCF := p.stopCF
	mon := p.rmfMon
	p.mu.Unlock()
	if mon != nil {
		mon.Stop()
	}
	if stopCF != nil {
		stopCF()
	}
	for _, s := range systems {
		for _, stop := range s.stopBg {
			stop()
		}
		s.locks.Shutdown()
	}
	// Clean shutdown of the DASD farm: flush acknowledged writes and
	// release the volume backends (no-op for an in-memory farm).
	p.farm.Close()
}

// SystemStats is a per-system activity snapshot.
type SystemStats struct {
	System string
	Region txmgr.Stats
	DB     db.Stats
	Locks  lockmgr.Stats
	Util   float64
}

// Stats snapshots every active system.
func (p *Sysplex) Stats() []SystemStats {
	p.mu.Lock()
	systems := make([]*System, 0, len(p.systems))
	for _, s := range p.systems {
		systems = append(systems, s)
	}
	p.mu.Unlock()
	sort.Slice(systems, func(i, j int) bool { return systems[i].name < systems[j].name })
	out := make([]SystemStats, 0, len(systems))
	for _, s := range systems {
		out = append(out, SystemStats{
			System: s.name,
			Region: s.region.Stats(),
			DB:     s.engine.Stats(),
			Locks:  s.locks.Stats(),
			Util:   s.wlm.Utilization(),
		})
	}
	return out
}
