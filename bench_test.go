package sysplex

// Benchmark harness: one benchmark per paper artifact (Figures 1-4) and
// per derived experiment. Custom metrics carry the quantities the paper
// reports; cmd/sysplexbench prints the same data as human-readable
// tables/series.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/scalemodel"
	"sysplex/internal/vclock"
)

// --- FIG1: system model assembly ---

// BenchmarkFig1_SystemModel measures building a complete 4-system
// sysplex (volumes, couple data sets, CF structures, four full software
// stacks) — the Figure 1 configuration as an executable artifact.
func BenchmarkFig1_SystemModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig("PLEX1", 4)
		cfg.Background = false
		p, err := New(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		p.Stop()
	}
}

// --- FIG2: data-sharing architecture micro-operations ---

func newCFBench(b *testing.B) *cf.Facility {
	b.Helper()
	return cf.New("CF01", vclock.Real())
}

// BenchmarkFig2_LockObtainRelease measures the synchronous
// no-contention lock path (the paper: "granted cpu-synchronously...
// measured in micro-seconds").
func BenchmarkFig2_LockObtainRelease(b *testing.B) {
	fac := newCFBench(b)
	ls, _ := fac.AllocateLockStructure("IRLM", 4096)
	ls.Connect(context.Background(), "SYS1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r, err := ls.Obtain(context.Background(), i%4096, "SYS1", cf.Exclusive); err != nil || !r.Granted {
			b.Fatal("obtain failed")
		}
		ls.Release(context.Background(), i%4096, "SYS1", cf.Exclusive)
	}
}

// BenchmarkFig2_CacheReadRegister measures directory registration +
// global-cache read.
func BenchmarkFig2_CacheReadRegister(b *testing.B) {
	fac := newCFBench(b)
	cs, _ := fac.AllocateCacheStructure("GBP0", 8192)
	vec := cf.NewBitVector(1024)
	cs.Connect(context.Background(), "SYS1", vec)
	cs.WriteAndInvalidate(context.Background(), "SYS1", "PAGE", []byte("data"), true, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.ReadAndRegister(context.Background(), "SYS1", "PAGE", i%1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_CacheWriteCrossInvalidate measures a write that must
// cross-invalidate a registered peer on every iteration.
func BenchmarkFig2_CacheWriteCrossInvalidate(b *testing.B) {
	fac := newCFBench(b)
	cs, _ := fac.AllocateCacheStructure("GBP0", 8192)
	v1, v2 := cf.NewBitVector(64), cf.NewBitVector(64)
	cs.Connect(context.Background(), "SYS1", v1)
	cs.Connect(context.Background(), "SYS2", v2)
	data := []byte("new version of the page")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.ReadAndRegister(context.Background(), "SYS2", "PAGE", 1)
		if err := cs.WriteAndInvalidate(context.Background(), "SYS1", "PAGE", data, true, true, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_VectorTest measures the local validity check (the new
// CPU instruction analog) — this is why reads avoid CF traffic.
func BenchmarkFig2_VectorTest(b *testing.B) {
	vec := cf.NewBitVector(4096)
	vec.Set(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !vec.Test(17) {
			b.Fatal("bit lost")
		}
	}
}

// BenchmarkFig2_ListQueue measures shared work-queue operations
// (write + pop) on a list structure.
func BenchmarkFig2_ListQueue(b *testing.B) {
	fac := newCFBench(b)
	ls, _ := fac.AllocateListStructure("WORKQ", 4, 0, 1<<20)
	ls.Connect(context.Background(), "SYS1", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("e%d", i)
		if err := ls.Write(context.Background(), "SYS1", 0, id, "", nil, cf.FIFO, cf.Cond{}); err != nil {
			b.Fatal(err)
		}
		if _, err := ls.Pop(context.Background(), "SYS1", 0, cf.Cond{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- FIG2 parallel variants: the same micro-operations driven from
// many goroutines. The paper's CF completes commands for all attached
// systems concurrently; these benchmarks (run with -cpu=1,4,8) measure
// how close the emulation gets to that as cores are added. ---

// BenchmarkFig2_LockObtainReleaseParallel drives the no-contention lock
// path from parallel requesters spread across the lock table.
func BenchmarkFig2_LockObtainReleaseParallel(b *testing.B) {
	fac := newCFBench(b)
	ls, _ := fac.AllocateLockStructure("IRLM", 4096)
	ls.Connect(context.Background(), "SYS1")
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(gid.Add(1)) * 131
		i := 0
		for pb.Next() {
			i++
			e := (base + i) % 4096
			if r, err := ls.Obtain(context.Background(), e, "SYS1", cf.Exclusive); err != nil || !r.Granted {
				b.Fatal("obtain failed")
			}
			ls.Release(context.Background(), e, "SYS1", cf.Exclusive)
		}
	})
}

// BenchmarkFig2_CacheReadRegisterParallel drives registration reads
// against a warm global cache from parallel readers over 512 blocks.
func BenchmarkFig2_CacheReadRegisterParallel(b *testing.B) {
	fac := newCFBench(b)
	cs, _ := fac.AllocateCacheStructure("GBP0", 8192)
	vec := cf.NewBitVector(1024)
	cs.Connect(context.Background(), "SYS1", vec)
	for i := 0; i < 512; i++ {
		cs.WriteAndInvalidate(context.Background(), "SYS1", fmt.Sprintf("PAGE%03d", i), []byte("data"), true, false, i)
	}
	pages := make([]string, 512)
	for i := range pages {
		pages[i] = fmt.Sprintf("PAGE%03d", i)
	}
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 97
		for pb.Next() {
			i++
			if _, err := cs.ReadAndRegister(context.Background(), "SYS1", pages[i%512], i%1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig2_CacheWriteCrossInvalidateParallel drives writes that
// cross-invalidate a registered peer, parallel writers on disjoint
// blocks.
func BenchmarkFig2_CacheWriteCrossInvalidateParallel(b *testing.B) {
	fac := newCFBench(b)
	cs, _ := fac.AllocateCacheStructure("GBP0", 8192)
	v1, v2 := cf.NewBitVector(1024), cf.NewBitVector(1024)
	cs.Connect(context.Background(), "SYS1", v1)
	cs.Connect(context.Background(), "SYS2", v2)
	data := []byte("new version of the page")
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1))
		page := fmt.Sprintf("PAGE%03d", g%512)
		vi := g % 1024
		for pb.Next() {
			cs.ReadAndRegister(context.Background(), "SYS2", page, vi)
			if err := cs.WriteAndInvalidate(context.Background(), "SYS1", page, data, true, true, vi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig2_ListQueueParallel drives write+pop queue cycles with
// each goroutine owning one of 64 lists (independent work queues, the
// multi-system consumption pattern of §3.3.3).
func BenchmarkFig2_ListQueueParallel(b *testing.B) {
	fac := newCFBench(b)
	ls, _ := fac.AllocateListStructure("WORKQ", 64, 0, 1<<20)
	ls.Connect(context.Background(), "SYS1", nil)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1))
		list := g % 64
		i := 0
		for pb.Next() {
			i++
			id := fmt.Sprintf("g%d-e%d", g, i)
			if err := ls.Write(context.Background(), "SYS1", list, id, "", nil, cf.FIFO, cf.Cond{}); err != nil {
				b.Fatal(err)
			}
			if _, err := ls.Pop(context.Background(), "SYS1", list, cf.Cond{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig2_DuplexedLockObtainParallel is the lock path through a
// duplexed structure pair: mutating commands are mirrored to both
// facilities, ordered per lock-table entry.
func BenchmarkFig2_DuplexedLockObtainParallel(b *testing.B) {
	pri := cf.New("CF01", vclock.Real())
	sec := cf.New("CF02", vclock.Real())
	d := cf.NewDuplexed(vclock.Real(), nil, pri, sec)
	ls, err := d.AllocateLockStructure("IRLM", 4096)
	if err != nil {
		b.Fatal(err)
	}
	ls.Connect(context.Background(), "SYS1")
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(gid.Add(1)) * 131
		i := 0
		for pb.Next() {
			i++
			e := (base + i) % 4096
			if r, err := ls.Obtain(context.Background(), e, "SYS1", cf.Exclusive); err != nil || !r.Granted {
				b.Fatal("obtain failed")
			}
			ls.Release(context.Background(), e, "SYS1", cf.Exclusive)
		}
	})
}

// BenchmarkFig2_DuplexedCacheReadParallel is the read path through a
// duplexed pair: primary-served reads, which duplexing should not
// serialize against each other.
func BenchmarkFig2_DuplexedCacheReadParallel(b *testing.B) {
	pri := cf.New("CF01", vclock.Real())
	sec := cf.New("CF02", vclock.Real())
	d := cf.NewDuplexed(vclock.Real(), nil, pri, sec)
	cs, err := d.AllocateCacheStructure("GBP0", 8192)
	if err != nil {
		b.Fatal(err)
	}
	vec := cf.NewBitVector(1024)
	cs.Connect(context.Background(), "SYS1", vec)
	for i := 0; i < 512; i++ {
		cs.WriteAndInvalidate(context.Background(), "SYS1", fmt.Sprintf("PAGE%03d", i), []byte("data"), true, false, i)
	}
	pages := make([]string, 512)
	for i := range pages {
		pages[i] = fmt.Sprintf("PAGE%03d", i)
	}
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 97
		for pb.Next() {
			i++
			if _, err := cs.ReadAndRegister(context.Background(), "SYS1", pages[i%512], i%1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- FIG3: scalability curves and §4 claims ---

// BenchmarkFig3_Scalability regenerates the Figure 3 series on the DES
// and reports the paper's §4 quantities as custom metrics.
func BenchmarkFig3_Scalability(b *testing.B) {
	params := scalemodel.DefaultParams()
	params.SimTime = 2 * time.Second
	for i := 0; i < b.N; i++ {
		claims := scalemodel.Claims(params)
		b.ReportMetric(100*claims.DataSharingCost, "%dscost(paper<18)")
		b.ReportMetric(100*claims.MaxIncrementalCost, "%incr(paper<0.5)")
		b.ReportMetric(100*claims.Effective32, "%eff@32sys")
	}
}

// BenchmarkFig3_SysplexPoint measures one 8-system DES point.
func BenchmarkFig3_SysplexPoint(b *testing.B) {
	params := scalemodel.DefaultParams()
	params.SimTime = time.Second
	for i := 0; i < b.N; i++ {
		r := scalemodel.MeasureSysplex(8, params)
		b.ReportMetric(r.EffectiveCap, "effective-engines")
	}
}

// --- FIG4: the full software stack ---

// BenchmarkFig4_FullStackTx measures end-to-end transactions through
// VTAM generic logon → CICS-style region → data-sharing DB → CF.
func BenchmarkFig4_FullStackTx(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 4)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	registerBankBenchPrograms(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte(fmt.Sprintf("acct%d", i%64))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_FullStackTxParallel drives the stack from parallel
// clients, the shape of real terminal traffic.
func BenchmarkFig4_FullStackTxParallel(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 4)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	registerBankBenchPrograms(p)
	var ctr int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := ctr
		ctr += 1 << 20
		for pb.Next() {
			i++
			if _, err := p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte(fmt.Sprintf("acct%d", i%512))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXP-DS: data sharing vs data partitioning under skew ---

func BenchmarkExpDS_SkewComparison(b *testing.B) {
	params := scalemodel.DefaultParams()
	params.SimTime = time.Second
	offered := 0.7 * 4 * 1000 / params.BaseServiceMS
	for i := 0; i < b.N; i++ {
		shared := scalemodel.MeasureSkew("sharing", 4, 0.6, offered, params)
		part := scalemodel.MeasureSkew("partitioned", 4, 0.6, offered, params)
		b.ReportMetric(shared.Throughput, "sharing-tps")
		b.ReportMetric(part.Throughput, "partitioned-tps")
		b.ReportMetric(shared.Throughput/part.Throughput, "sharing-advantage")
	}
}

// --- EXP-AVAIL: failover detection + recovery latency ---

func BenchmarkExpAvail_Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig("PLEX1", 3)
		p, err := New(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		registerBankBenchPrograms(p)
		p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte("warm"))
		b.StartTimer()

		start := time.Now()
		p.KillSystem("SYS2")
		for !p.XCF().IsFailed("SYS2") {
			time.Sleep(time.Millisecond)
		}
		for len(p.RecoveryReports()) == 0 {
			time.Sleep(time.Millisecond)
		}
		b.ReportMetric(float64(time.Since(start).Milliseconds()), "ms-to-recovered")

		b.StopTimer()
		p.Stop()
		b.StartTimer()
	}
}

// --- EXP-GROW: non-disruptive growth ---

func BenchmarkExpGrow_AddSystem(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 2)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reuse one system name: the re-added system reattaches to its
		// existing log dataset, as a re-IPLed system would, so the bench
		// does not exhaust the volume with b.N log allocations.
		if _, err := p.AddSystem(context.Background(), SystemConfig{Name: "GROWX", CPUs: 1}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		p.RemoveSystem(context.Background(), "GROWX")
		b.StartTimer()
	}
}

// --- EXP-QUERY: parallel decision support ---

func BenchmarkExpQuery_ParallelScan(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 4)
	cfg.Background = false
	cfg.Tables = []TableConfig{{Name: "ACCT", Pages: 64}}
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	registerBankBenchPrograms(p)
	for i := 0; i < 200; i++ {
		p.Submit(context.Background(), "SYS1", "DEPOSIT", []byte(fmt.Sprintf("row%04d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.ParallelQuery(context.Background(), "ACCT", "sum", "row")
		if err != nil || res.Count != 200 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// --- EXP-FALSE: false contention vs lock table size ---

func BenchmarkExpFalse_LockTable(b *testing.B) {
	for _, entries := range []int{64, 1024, 16384} {
		entries := entries
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			fac := cf.New("CF01", vclock.Real())
			ls, _ := fac.AllocateLockStructure("IRLM", entries)
			ls.Connect(context.Background(), "SYS1")
			ls.Connect(context.Background(), "SYS2")
			// SYS1 holds a spread of resources; SYS2 probes different
			// resources and hits false contention when entries collide.
			const held = 48
			for i := 0; i < held; i++ {
				ls.Obtain(context.Background(), ls.HashResource(fmt.Sprintf("HELD.%d", i)), "SYS1", cf.Exclusive)
			}
			falseHits := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := ls.HashResource(fmt.Sprintf("PROBE.%d", i))
				r, err := ls.Obtain(context.Background(), e, "SYS2", cf.Exclusive)
				if err != nil {
					b.Fatal(err)
				}
				if r.Granted {
					ls.Release(context.Background(), e, "SYS2", cf.Exclusive)
				} else {
					falseHits++ // distinct resources: all contention is false
				}
			}
			b.ReportMetric(100*float64(falseHits)/float64(b.N), "%false-contention")
		})
	}
}

func registerBankBenchPrograms(p *Sysplex) {
	p.RegisterProgram("DEPOSIT", 1, func(tx *Tx, input []byte) ([]byte, error) {
		key := string(input)
		v, _, err := tx.Get("ACCT", key)
		if err != nil {
			return nil, err
		}
		var n int
		fmt.Sscanf(string(v), "%d", &n)
		if err := tx.Put("ACCT", key, []byte(fmt.Sprintf("%d", n+1))); err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", n+1)), nil
	})
	p.RegisterProgram("BALANCE", 1, func(tx *Tx, input []byte) ([]byte, error) {
		v, ok, err := tx.Get("ACCT", string(input))
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte("0"), nil
		}
		return v, nil
	})
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblation_LocalValidityFastPath measures a page read that is
// satisfied by the local bit-vector test (the architecture's fast
// path)...
func BenchmarkAblation_LocalValidityFastPath(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 1)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	registerBankBenchPrograms(p)
	p.Submit(context.Background(), "SYS1", "DEPOSIT", []byte("hot"))
	s1, _ := p.System("SYS1")
	page := "T.ACCT.0"
	_ = page
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Submit(context.Background(), "SYS1", "BALANCE", []byte("hot")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s1.Engine().PoolStats()
	b.ReportMetric(float64(st.LocalHits)/float64(st.LocalHits+st.GlobalHits+st.DasdReads+1)*100, "%local-hits")
}

// ...while BenchmarkAblation_NoLocalCache forces every read back to the
// CF (the cost the bit vector avoids): the pool's local frame is
// invalidated between reads, so each access re-registers and refreshes
// from the global cache.
func BenchmarkAblation_NoLocalCache(b *testing.B) {
	cfg := DefaultConfig("PLEX1", 1)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	registerBankBenchPrograms(p)
	p.Submit(context.Background(), "SYS1", "DEPOSIT", []byte("hot"))
	s1, _ := p.System("SYS1")
	// Discover which pages ACCT key "hot" lives on by probing stats.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Drop all local frames: next read must go to the CF.
		for pg := 0; pg < 64; pg++ {
			s1.Engine().InvalidateLocal(context.Background(), "ACCT", pg)
		}
		b.StartTimer()
		if _, err := p.Submit(context.Background(), "SYS1", "BALANCE", []byte("hot")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CFLinkLatency sweeps the injected coupling-link
// latency to show how the synchronous command cost propagates into
// end-to-end transaction time (the reason the real hardware works in
// microseconds).
func BenchmarkAblation_CFLinkLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond} {
		lat := lat
		b.Run(lat.String(), func(b *testing.B) {
			cfg := DefaultConfig("PLEX1", 2)
			cfg.Background = false
			p, err := New(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Stop()
			registerBankBenchPrograms(p)
			p.Facility().SetSyncLatency(lat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Submit(context.Background(), "SYS1", "DEPOSIT", []byte(fmt.Sprintf("k%d", i%16))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DESCFOpCost shows how the §4 data-sharing cost
// scales with the per-command CF cost in the scalability model.
func BenchmarkAblation_DESCFOpCost(b *testing.B) {
	for _, micros := range []float64{4, 8, 16} {
		micros := micros
		b.Run(fmt.Sprintf("%gus", micros), func(b *testing.B) {
			params := scalemodel.DefaultParams()
			params.SimTime = time.Second
			params.CFOpMicros = micros
			for i := 0; i < b.N; i++ {
				r1 := scalemodel.MeasureSysplex(1, params)
				r2 := scalemodel.MeasureSysplex(2, params)
				b.ReportMetric(100*(1-r2.EffectiveCap/(2*r1.EffectiveCap)), "%dscost")
			}
		})
	}
}

// BenchmarkAblation_LockTableSize shows grant cost is flat in table
// size (hashing) — the design reason big tables are cheap insurance
// against false contention.
func BenchmarkAblation_LockTableSize(b *testing.B) {
	for _, entries := range []int{64, 4096, 262144} {
		entries := entries
		b.Run(fmt.Sprintf("%d", entries), func(b *testing.B) {
			fac := cf.New("CF01", vclock.Real())
			ls, _ := fac.AllocateLockStructure("L", entries)
			ls.Connect(context.Background(), "SYS1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := ls.HashResource(fmt.Sprintf("R%d", i))
				if r, err := ls.Obtain(context.Background(), e, "SYS1", cf.Exclusive); err != nil || !r.Granted {
					b.Fatal("obtain failed")
				}
				ls.Release(context.Background(), e, "SYS1", cf.Exclusive)
			}
		})
	}
}
