package sysplex

// Integration tests for the JES2-style shared job queue riding the CF
// list structure (§3.3.3 workload-distribution queueing + §5.1 JES2 as
// a base exploiter).

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestBatchJobsDistributeAcrossSystems(t *testing.T) {
	cfg := DefaultConfig("PLEX1", 3)
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	p.RegisterJobClass("REPORT", func(payload []byte) ([]byte, error) {
		return append([]byte("report:"), payload...), nil
	})

	const jobs = 30
	ids := make([]string, jobs)
	for i := range ids {
		id, err := p.SubmitJob(context.Background(), "REPORT", []byte(fmt.Sprintf("month-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	ranOn := map[string]int{}
	for i, id := range ids {
		job, err := p.WaitJob(context.Background(), id, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("report:month-%d", i); string(job.Output) != want {
			t.Fatalf("job %s output = %q, want %q", id, job.Output, want)
		}
		ranOn[job.RanOn]++
	}
	if len(ranOn) < 2 {
		t.Fatalf("jobs ran on %v, want distribution across systems", ranOn)
	}
}

func TestBatchJobSurvivesSystemFailure(t *testing.T) {
	cfg := DefaultConfig("PLEX1", 2)
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// A job class that hangs forever on SYS1 (simulating death mid-job)
	// but completes instantly on SYS2.
	p.RegisterJobClass("FRAGILE", func(payload []byte) ([]byte, error) {
		return []byte("done"), nil
	})
	s1, _ := p.System("SYS1")
	claimed := make(chan struct{}, 4)
	s1.jesExec.Register("FRAGILE", func(payload []byte) ([]byte, error) {
		claimed <- struct{}{}
		select {} // wedged: SYS1 is about to die
	})

	// Stop SYS2's executor so SYS1 claims the job first.
	s2, _ := p.System("SYS2")
	s2.jesExec.Stop()

	id, err := p.SubmitJob(context.Background(), "FRAGILE", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-claimed:
	case <-time.After(10 * time.Second):
		t.Fatal("SYS1 never claimed the job")
	}
	// Wait for the claim checkpoint, then kill SYS1: XCF failure
	// processing requeues the orphaned job.
	waitFor(t, "claim checkpoint", func() bool { return p.JES().Active() == 1 })
	p.PartitionSystem("SYS1")
	waitFor(t, "orphan requeued", func() bool { return p.JES().Pending() == 1 && p.JES().Active() == 0 })

	// Restart SYS2's executor; it picks the job up.
	s2.jesExec.Start(time.Millisecond)
	job, err := p.WaitJob(context.Background(), id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(job.Output) != "done" || job.RanOn != "SYS2" {
		t.Fatalf("job = %+v", job)
	}
}

func TestBatchQueueSurvivesCFRebuild(t *testing.T) {
	cfg := DefaultConfig("PLEX1", 2)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	p.RegisterJobClass("J", func(payload []byte) ([]byte, error) {
		return []byte(strings.ToUpper(string(payload))), nil
	})
	// Queue jobs, complete one, leave two pending, then rebuild the CF.
	idDone, _ := p.SubmitJob(context.Background(), "J", []byte("first"))
	s1, _ := p.System("SYS1")
	s1.jesExec.DrainOnce(context.Background())
	idA, _ := p.SubmitJob(context.Background(), "J", []byte("second"))
	idB, _ := p.SubmitJob(context.Background(), "J", []byte("third"))

	if err := p.RebuildCouplingFacility(); err != nil {
		t.Fatal(err)
	}
	// Completed result survived the rebuild.
	job, err := p.JobResult(context.Background(), idDone)
	if err != nil || string(job.Output) != "FIRST" {
		t.Fatalf("job = %+v err=%v", job, err)
	}
	// Pending jobs survived and run on the new structure.
	s2, _ := p.System("SYS2")
	s2.jesExec.DrainOnce(context.Background())
	for _, id := range []string{idA, idB} {
		job, err := p.JobResult(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if job.RanOn != "SYS2" {
			t.Fatalf("job = %+v", job)
		}
	}
}
