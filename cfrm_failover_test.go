package sysplex

// Acceptance tests for CFRM structure duplexing (DESIGN.md §7): an
// unplanned coupling-facility failure under live transaction load.
// With duplexing enabled no transaction may observe the failure and no
// committed update may be lost; in simplex mode transactions fail
// cleanly with ErrCFDown and a rebuild restores service from the
// surviving structure image, again with zero committed-update loss.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sysplex/internal/cf"
	"sysplex/internal/cfrm"
)

// runDepositLoad drives nWorkers concurrent DEPOSIT streams, each on
// its own account key, kills the primary CF roughly mid-stream, and
// returns per-key success counts plus every error the workers saw.
func runDepositLoad(t *testing.T, p *Sysplex, nWorkers, nOps int) (success map[string]int64, errs []error) {
	t.Helper()
	counts := make([]atomic.Int64, nWorkers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("acct%02d", w)
			<-start
			for i := 0; i < nOps; i++ {
				if _, err := p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte(key)); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("worker %d op %d: %w", w, i, err))
					mu.Unlock()
					continue
				}
				counts[w].Add(1)
			}
		}(w)
	}
	close(start)
	// Let the load ramp up, then yank the primary CF out from under it.
	time.Sleep(5 * time.Millisecond)
	p.Facility().Fail()
	wg.Wait()
	success = make(map[string]int64, nWorkers)
	for w := 0; w < nWorkers; w++ {
		success[fmt.Sprintf("acct%02d", w)] = counts[w].Load()
	}
	return success, errs
}

// checkBalances verifies that every account's balance equals exactly
// the number of deposits that reported success: nothing committed was
// lost, and nothing reported as failed actually landed.
func checkBalances(t *testing.T, p *Sysplex, success map[string]int64) {
	t.Helper()
	for key, want := range success {
		out, err := p.SubmitViaLogon(context.Background(), "BALANCE", []byte(key))
		if err != nil {
			t.Fatalf("BALANCE %s: %v", key, err)
		}
		var got int64
		fmt.Sscanf(string(out), "%d", &got)
		if got != want {
			t.Errorf("%s = %d, want %d (committed updates lost or phantom)", key, got, want)
		}
	}
}

func TestUnplannedCFFailureDuplexed(t *testing.T) {
	cfg := DefaultConfig("PLEX1", 3)
	cfg.Background = false
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	registerBankPrograms(p)
	if got := p.CFRM().Status().State; got != "duplexed" {
		t.Fatalf("initial state = %s, want duplexed", got)
	}
	oldPrimary := p.Facility().Name()

	success, errs := runDepositLoad(t, p, 8, 150)
	// Duplexing promises transparent failover: not one transaction may
	// have observed the CF failure.
	for _, e := range errs {
		t.Errorf("transaction failed during duplexed CF loss: %v", e)
	}
	for key, n := range success {
		if n != 150 {
			t.Fatalf("%s: %d/150 deposits succeeded", key, n)
		}
	}

	// CFRM failed over in-line and, in the background, re-duplexed into
	// a fresh candidate.
	if err := p.CFRM().WaitDuplexed(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := p.CFRM().Status()
	if st.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", st.Failovers)
	}
	if st.Primary == oldPrimary {
		t.Fatalf("primary still %s after failure", oldPrimary)
	}
	if len(st.Failed) != 1 || st.Failed[0] != oldPrimary {
		t.Fatalf("failed facilities = %v, want [%s]", st.Failed, oldPrimary)
	}
	// The new secondary carries every structure the sysplex allocated.
	names := p.CFRM().Secondary().StructureNames()
	for _, want := range []string{"IRLM.DBP1", "GBP.DBP1", "ISTGENERIC", "JES2CKPT", "IRRXCF00"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("structure %s missing from new secondary %s (has %v)",
				want, p.CFRM().Secondary().Name(), names)
		}
	}

	checkBalances(t, p, success)

	// Service continues at full function on the re-duplexed pair.
	for i := 0; i < 20; i++ {
		if _, err := p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte("post")); err != nil {
			t.Fatalf("post-failover deposit: %v", err)
		}
	}
	out, _ := p.SubmitViaLogon(context.Background(), "BALANCE", []byte("post"))
	if string(out) != "20" {
		t.Fatalf("post = %s, want 20", out)
	}
}

func TestUnplannedCFFailureSimplex(t *testing.T) {
	cfg := DefaultConfig("PLEX1", 3)
	cfg.Background = false
	cfg.CF.Mode = cfrm.ModeSimplex
	p, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	registerBankPrograms(p)
	if got := p.CFRM().Status().State; got != "simplex" {
		t.Fatalf("initial state = %s, want simplex", got)
	}

	success, errs := runDepositLoad(t, p, 8, 150)
	// Without a secondary the failure is service-affecting: workers
	// must have seen errors, and every error must be the clean CF-down
	// indication — never a hang, panic, or silent wrong answer.
	if len(errs) == 0 {
		t.Fatal("no transaction observed the CF failure in simplex mode")
	}
	for _, e := range errs {
		// Routed submits flatten the error chain through the CTC ship
		// layer, so match structurally where possible and textually
		// otherwise.
		if !errors.Is(e, cf.ErrCFDown) && !strings.Contains(e.Error(), cf.ErrCFDown.Error()) {
			t.Fatalf("unexpected failure kind during CF loss: %v", e)
		}
	}
	// A direct submit on a local system surfaces the typed error.
	if _, err := p.Submit(context.Background(), "SYS1", "DEPOSIT", []byte("probe")); err == nil {
		t.Fatal("submit succeeded against a dead simplex CF")
	}

	// Rebuild restores service from the structure image (standing in
	// for connector-held rebuild data), with zero committed loss.
	if err := p.RebuildCouplingFacility(); err != nil {
		t.Fatal(err)
	}
	checkBalances(t, p, success)
	for i := 0; i < 20; i++ {
		if _, err := p.SubmitViaLogon(context.Background(), "DEPOSIT", []byte("post")); err != nil {
			t.Fatalf("post-rebuild deposit: %v", err)
		}
	}
}
